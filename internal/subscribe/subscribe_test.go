package subscribe

// Unit contracts of the subscription registry: canonical grouping, one
// evaluation per group per tick however many subscribers fan out of it,
// since-token continuity, slow-consumer resync semantics, the rotating
// change channel, and the pump (wake-driven and poll-driven). End-to-end
// behaviour over a real corpus — including HTTP transports — is pinned at
// the repo root and in internal/apiserve.

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/quality"
)

// stubSnap is a Snapshot with a fixed window; evals counts standing-query
// evaluations against it so tests can pin the one-evaluation-per-tick
// fan-out property.
type stubSnap struct {
	version int64
	items   []*quality.Assessment
	evals   atomic.Int64
	failQ   bool
}

func (s *stubSnap) Version() int64 { return s.version }

func (s *stubSnap) QuerySources(q quality.Query) (*quality.QueryResult, error) {
	s.evals.Add(1)
	if s.failQ {
		return nil, errors.New("transient evaluation failure")
	}
	return &quality.QueryResult{Items: s.items, Total: len(s.items)}, nil
}

func window(ids ...int) []*quality.Assessment {
	items := make([]*quality.Assessment, len(ids))
	for i, id := range ids {
		items[i] = &quality.Assessment{ID: id, Name: "src", Score: 1 - float64(i)*0.1}
	}
	return items
}

// swappableSource is a provider stub: a current snapshot plus the rotating
// change channel of the ChangeNotifier contract.
type swappableSource struct {
	mu  sync.Mutex
	cur Snapshot
	ch  chan struct{}
}

func newSource(cur Snapshot) *swappableSource {
	return &swappableSource{cur: cur, ch: make(chan struct{})}
}

func (p *swappableSource) snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

func (p *swappableSource) changed() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ch
}

func (p *swappableSource) swap(next Snapshot) {
	p.mu.Lock()
	old := p.ch
	p.cur, p.ch = next, make(chan struct{})
	p.mu.Unlock()
	close(old)
}

func TestSubscribeGroupsByCanonicalKey(t *testing.T) {
	src := newSource(&stubSnap{version: 1, items: window(1, 2, 3)})
	r := New(src.snapshot, Options{})
	defer r.Close()

	// Three spellings of one standing filter: set order, duplicates, and
	// the projection must all canonicalize onto one group.
	a, err := r.Subscribe(quality.Query{Categories: []string{"place", "pulse"}, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Subscribe(quality.Query{Categories: []string{"pulse", "place", "pulse"}, TopK: 10, Fields: quality.ProjectFull})
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Subscribe(quality.Query{Categories: []string{"place"}, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	defer c.Close()
	st := r.Stats()
	if st.Groups != 2 || st.Subscribers != 3 {
		t.Fatalf("stats %+v, want 2 groups / 3 subscribers", st)
	}
	if a.Since() != 1 || b.Since() != 1 {
		t.Fatalf("baselines %d/%d, want 1", a.Since(), b.Since())
	}
	// Shared group: identical baseline window by reference.
	if len(a.Window()) == 0 || &a.Window()[0] != &b.Window()[0] {
		t.Fatal("same standing query must share one baseline window")
	}

	// Pagination positions are rejected; errors at evaluation surface too.
	if _, err := r.Subscribe(quality.Query{Offset: 3}); err == nil {
		t.Fatal("offset must be rejected")
	}
	if _, err := r.Subscribe(quality.Query{After: &quality.Cursor{}}); err == nil {
		t.Fatal("cursor must be rejected")
	}
}

func TestOneEvaluationPerTickFanOut(t *testing.T) {
	snap1 := &stubSnap{version: 1, items: window(1, 2, 3, 4)}
	src := newSource(snap1)
	r := New(src.snapshot, Options{})
	defer r.Close()

	const n = 50
	subs := make([]*Subscription, n)
	for i := range subs {
		s, err := r.Subscribe(quality.Query{TopK: 4})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
		defer s.Close()
	}
	if got := snap1.evals.Load(); got != 1 {
		t.Fatalf("%d baseline evaluations for %d subscribers, want 1", got, n)
	}

	snap2 := &stubSnap{version: 2, items: window(1, 3, 5, 2)}
	src.swap(snap2)
	r.Publish(snap2)
	if got := snap2.evals.Load(); got != 1 {
		t.Fatalf("%d evaluations for the tick with %d subscribers, want 1", got, n)
	}

	want := Event{Since: 1, Snapshot: 2, Changes: quality.DiffWindows(snap1.items, snap2.items), Snap: snap2}
	var first Event
	for i, s := range subs {
		select {
		case ev := <-s.Events():
			if ev.Since != want.Since || ev.Snapshot != want.Snapshot || !reflect.DeepEqual(ev.Changes, want.Changes) {
				t.Fatalf("subscriber %d event %+v, want %+v", i, ev, want)
			}
			if i == 0 {
				first = ev
			} else if len(ev.Changes) > 0 && &ev.Changes[0] != &first.Changes[0] {
				t.Fatal("the delta must be computed once and fanned out by reference")
			}
		default:
			t.Fatalf("subscriber %d received nothing", i)
		}
	}
	if st := r.Stats(); st.Ticks != 1 || st.Evaluations != 2 { // 1 baseline + 1 tick
		t.Fatalf("stats %+v, want 1 tick / 2 evaluations", st)
	}
}

func TestSinceTokenContinuity(t *testing.T) {
	src := newSource(&stubSnap{version: 1, items: window(1, 2)})
	r := New(src.snapshot, Options{})
	defer r.Close()
	s, err := r.Subscribe(quality.Query{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	windows := [][]*quality.Assessment{window(2, 1), window(2, 1), window(1, 3)}
	for i, wdw := range windows {
		next := &stubSnap{version: int64(i + 2), items: wdw}
		src.swap(next)
		r.Publish(next)
	}
	since := s.Since()
	for i := 0; i < len(windows); i++ {
		ev := <-s.Events()
		if ev.Since != since || ev.Snapshot != since+1 {
			t.Fatalf("event %d spans %d->%d, want %d->%d", i, ev.Since, ev.Snapshot, since, since+1)
		}
		since = ev.Snapshot
	}
	// The middle tick held the window: its event still arrived (advancing
	// the token) with an empty delta.
	// (Checked implicitly above: three events for three ticks.)

	// Stale and duplicate publishes are no-ops.
	r.Publish(&stubSnap{version: 2, items: window(9)})
	select {
	case ev := <-s.Events():
		t.Fatalf("stale publish delivered %+v", ev)
	default:
	}
}

func TestSlowConsumerOverflowResync(t *testing.T) {
	src := newSource(&stubSnap{version: 1, items: window(1, 2)})
	r := New(src.snapshot, Options{Buffer: 2})
	defer r.Close()

	slow, err := r.Subscribe(quality.Query{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := r.Subscribe(quality.Query{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()

	for v := int64(2); v <= 5; v++ {
		next := &stubSnap{version: v, items: window(int(v), 1)}
		src.swap(next)
		r.Publish(next)
		<-fast.Events() // the draining consumer never overflows
	}
	// The slow consumer buffered ticks 2 and 3, overflowed on 4 and was
	// dropped: buffered events stay readable, then the channel closes and
	// Err reports resync semantics.
	if ev := <-slow.Events(); ev.Snapshot != 2 {
		t.Fatalf("first buffered event %+v", ev)
	}
	if ev := <-slow.Events(); ev.Snapshot != 3 {
		t.Fatalf("second buffered event %+v", ev)
	}
	if _, ok := <-slow.Events(); ok {
		t.Fatal("overflowed subscription must close after its buffered events")
	}
	if !errors.Is(slow.Err(), ErrSlowConsumer) {
		t.Fatalf("Err = %v, want ErrSlowConsumer", slow.Err())
	}
	if fast.Err() != nil {
		t.Fatalf("draining subscriber Err = %v, want nil", fast.Err())
	}
	if st := r.Stats(); st.Overflows != 1 || st.Subscribers != 1 {
		t.Fatalf("stats %+v, want 1 overflow / 1 remaining subscriber", st)
	}
	slow.Close() // idempotent after a drop
}

// TestOverflowOfLastSubscriberRetiresGroup pins that dropping a group's
// only subscriber retires the group itself: a dropped subscription's
// Close is a no-op, so the overflow path must do the cleanup, or the
// registry would evaluate an orphaned standing query on every tick
// forever.
func TestOverflowOfLastSubscriberRetiresGroup(t *testing.T) {
	src := newSource(&stubSnap{version: 1, items: window(1, 2)})
	r := New(src.snapshot, Options{Buffer: 1})
	defer r.Close()
	only, err := r.Subscribe(quality.Query{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(2); v <= 3; v++ { // fills the 1-slot buffer, then drops
		next := &stubSnap{version: v, items: window(int(v), 1)}
		src.swap(next)
		r.Publish(next)
	}
	if !errors.Is(only.Err(), ErrSlowConsumer) {
		t.Fatalf("Err = %v, want ErrSlowConsumer", only.Err())
	}
	only.Close() // the post-drop no-op every transport performs
	if st := r.Stats(); st.Groups != 0 || st.Subscribers != 0 {
		t.Fatalf("stats %+v, want the orphaned group retired", st)
	}
	evalsBefore := r.Stats().Evaluations
	next := &stubSnap{version: 4, items: window(4, 1)}
	src.swap(next)
	r.Publish(next)
	if got := r.Stats().Evaluations; got != evalsBefore {
		t.Fatalf("orphaned group still evaluated after its last subscriber was dropped (%d -> %d)", evalsBefore, got)
	}
}

func TestEvaluationErrorKeepsBaseline(t *testing.T) {
	src := newSource(&stubSnap{version: 1, items: window(1, 2)})
	r := New(src.snapshot, Options{})
	defer r.Close()
	s, err := r.Subscribe(quality.Query{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	bad := &stubSnap{version: 2, items: window(2, 1), failQ: true}
	src.swap(bad)
	r.Publish(bad)
	select {
	case ev := <-s.Events():
		t.Fatalf("failed evaluation delivered %+v", ev)
	default:
	}
	// The next good round diffs across the gap: since spans 1 -> 3.
	good := &stubSnap{version: 3, items: window(2, 1)}
	src.swap(good)
	r.Publish(good)
	ev := <-s.Events()
	if ev.Since != 1 || ev.Snapshot != 3 || len(ev.Changes) == 0 {
		t.Fatalf("gap event %+v, want since 1 -> snapshot 3 with changes", ev)
	}
}

func TestChangedRotatesPerPublish(t *testing.T) {
	src := newSource(&stubSnap{version: 1, items: window(1)})
	r := New(src.snapshot, Options{})
	defer r.Close()
	r.Publish(src.snapshot())

	ch := r.Changed()
	select {
	case <-ch:
		t.Fatal("changed channel closed before any publication")
	default:
	}
	next := &stubSnap{version: 2, items: window(1)}
	src.swap(next)
	r.Publish(next)
	select {
	case <-ch:
	default:
		t.Fatal("publication must close the grabbed channel")
	}
	if ch2 := r.Changed(); ch2 == ch {
		t.Fatal("a fresh channel must be handed out after rotation")
	}
}

func TestPumpWakeDriven(t *testing.T) {
	src := newSource(&stubSnap{version: 1, items: window(1, 2)})
	r := New(src.snapshot, Options{Wake: src.changed})
	defer r.Close()
	s, err := r.Subscribe(quality.Query{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	src.swap(&stubSnap{version: 2, items: window(2, 1)})
	select {
	case ev := <-s.Events():
		if ev.Since != 1 || ev.Snapshot != 2 {
			t.Fatalf("pumped event %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wake-driven pump never published the swap")
	}
}

func TestPumpPollDriven(t *testing.T) {
	src := newSource(&stubSnap{version: 1, items: window(1, 2)})
	r := New(src.snapshot, Options{PollInterval: 5 * time.Millisecond})
	defer r.Close()
	s, err := r.Subscribe(quality.Query{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// No wake source: the swap is picked up by the registry-wide poll.
	src.mu.Lock()
	src.cur = &stubSnap{version: 2, items: window(2, 1)}
	src.mu.Unlock()
	select {
	case ev := <-s.Events():
		if ev.Snapshot != 2 {
			t.Fatalf("polled event %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poll-driven pump never published the swap")
	}
}

func TestCloseUnblocksSubscribers(t *testing.T) {
	src := newSource(&stubSnap{version: 1, items: window(1)})
	r := New(src.snapshot, Options{})
	s, err := r.Subscribe(quality.Query{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, ok := <-s.Events(); ok {
		t.Fatal("close must close subscription channels")
	}
	if !errors.Is(s.Err(), ErrClosed) {
		t.Fatalf("Err = %v, want ErrClosed", s.Err())
	}
	if _, err := r.Subscribe(quality.Query{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after Close = %v, want ErrClosed", err)
	}
	r.Close() // idempotent
}

// TestConcurrentSubscribeUnsubscribeDuringPublish races subscriber churn
// against a publishing writer under -race: every event a subscription
// receives must chain contiguously from its own baseline.
func TestConcurrentSubscribeUnsubscribeDuringPublish(t *testing.T) {
	src := newSource(&stubSnap{version: 1, items: window(1, 2, 3)})
	r := New(src.snapshot, Options{})
	defer r.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := quality.Query{TopK: 2 + g%3}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s, err := r.Subscribe(q)
				if err != nil {
					t.Error(err)
					return
				}
				since := s.Since()
				for drained := 0; drained < 3; drained++ {
					select {
					case ev, ok := <-s.Events():
						if !ok {
							t.Error("unexpected close mid-drain")
							return
						}
						if ev.Since != since {
							t.Errorf("since chain broke: event %d->%d after %d", ev.Since, ev.Snapshot, since)
							return
						}
						since = ev.Snapshot
					case <-time.After(time.Millisecond):
					}
				}
				s.Close()
			}
		}(g)
	}
	for v := int64(2); v < 60; v++ {
		next := &stubSnap{version: v, items: window(int(v%5), int(v%3)+5, 1)}
		src.swap(next)
		r.Publish(next)
		time.Sleep(500 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
}

// TestFilterApply pins the per-subscription delta-filter semantics on
// crafted changes: entered-only, rank-jump and score-delta conditions,
// conjunction, entered/left rows always satisfying magnitude conditions,
// and the shared input slice staying untouched.
func TestFilterApply(t *testing.T) {
	old := []*quality.Assessment{
		{ID: 1, Name: "a", Score: 0.90},
		{ID: 2, Name: "b", Score: 0.80},
		{ID: 3, Name: "c", Score: 0.70},
		{ID: 4, Name: "d", Score: 0.60},
	}
	changes := []quality.WindowChange{
		{ID: 5, Name: "e", OldRank: 0, NewRank: 1, Score: 0.95},  // entered
		{ID: 1, Name: "a", OldRank: 1, NewRank: 2, Score: 0.905}, // moved 1, score delta 0.005
		{ID: 3, Name: "c", OldRank: 3, NewRank: 6, Score: 0.40},  // moved 3, score delta 0.30
		{ID: 4, Name: "d", OldRank: 4, NewRank: 0, Score: 0.60},  // left
	}
	ids := func(cs []quality.WindowChange) []int {
		out := make([]int, len(cs))
		for i, c := range cs {
			out[i] = c.ID
		}
		return out
	}

	if got := (Filter{}).Apply(changes, old); &got[0] != &changes[0] {
		t.Fatal("zero filter must return the shared slice as-is")
	}
	if got := ids((Filter{EnteredOnly: true}).Apply(changes, old)); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("entered-only kept %v, want [5]", got)
	}
	if got := ids((Filter{MinRankJump: 2}).Apply(changes, old)); !reflect.DeepEqual(got, []int{5, 3, 4}) {
		t.Fatalf("rank-jump>=2 kept %v, want [5 3 4] (entered/left always qualify)", got)
	}
	if got := ids((Filter{MinScoreDelta: 0.1}).Apply(changes, old)); !reflect.DeepEqual(got, []int{5, 3, 4}) {
		t.Fatalf("score-delta>=0.1 kept %v, want [5 3 4]", got)
	}
	if got := ids((Filter{EnteredOnly: true, MinRankJump: 2}).Apply(changes, old)); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("conjunction kept %v, want [5]", got)
	}
	if got := (Filter{MinRankJump: 100}).Apply(changes[1:3], old); len(got) != 0 {
		t.Fatalf("nothing qualifies, got %v", got)
	}
	// The shared slice was never mutated by any of the above.
	if changes[0].ID != 5 || changes[1].ID != 1 || changes[2].ID != 3 || changes[3].ID != 4 {
		t.Fatal("Apply mutated the shared changes slice")
	}
}

// TestSubscribeWithFilterSharedEvaluation: filtered and unfiltered
// subscribers of one standing query share one group and one evaluation
// per tick; two subscribers with the same filter share one filtered view
// by reference; an all-filtered-out tick still delivers an event (empty
// changes) advancing the since-token; every event carries the new window.
func TestSubscribeWithFilterSharedEvaluation(t *testing.T) {
	snap1 := &stubSnap{version: 1, items: window(1, 2, 3)}
	src := newSource(snap1)
	r := New(src.snapshot, Options{})
	defer r.Close()

	q := quality.Query{TopK: 3}
	plain, err := r.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	f := Filter{EnteredOnly: true}
	fa, err := r.SubscribeWith(q, f)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := r.SubscribeWith(q, f)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	defer fa.Close()
	defer fb.Close()
	if st := r.Stats(); st.Groups != 1 || st.Subscribers != 3 {
		t.Fatalf("stats %+v, want one shared group with 3 subscribers", st)
	}

	// Tick: 4 enters at the top, 3 leaves, 1 and 2 shift down.
	snap2 := &stubSnap{version: 2, items: window(4, 1, 2)}
	r.Publish(snap2)
	if snap2.evals.Load() != 1 {
		t.Fatalf("evaluations = %d, want 1 (filters must not re-evaluate)", snap2.evals.Load())
	}

	pe, fe1, fe2 := <-plain.Events(), <-fa.Events(), <-fb.Events()
	if len(pe.Changes) != 4 {
		t.Fatalf("unfiltered delta has %d changes, want 4", len(pe.Changes))
	}
	if len(fe1.Changes) != 1 || fe1.Changes[0].ID != 4 {
		t.Fatalf("filtered delta %v, want only the entered row 4", fe1.Changes)
	}
	if len(fe1.Changes) == 0 || len(fe2.Changes) == 0 || &fe1.Changes[0] != &fe2.Changes[0] {
		t.Fatal("identical filters must share one filtered view by reference")
	}
	if fe1.Since != 1 || fe1.Snapshot != 2 {
		t.Fatalf("filtered event tokens %d->%d, want 1->2", fe1.Since, fe1.Snapshot)
	}
	if len(pe.Window) != 3 || &pe.Window[0] != &fe1.Window[0] {
		t.Fatal("events must carry the shared new window by reference")
	}

	// Tick with movement that the filter passes nothing of: 1 and 2 swap.
	snap3 := &stubSnap{version: 3, items: window(4, 2, 1)}
	r.Publish(snap3)
	fe3 := <-fa.Events()
	if len(fe3.Changes) != 0 {
		t.Fatalf("filtered delta %v, want empty (nothing entered)", fe3.Changes)
	}
	if fe3.Since != 2 || fe3.Snapshot != 3 {
		t.Fatalf("empty filtered event must still advance the token: %d->%d", fe3.Since, fe3.Snapshot)
	}
}
