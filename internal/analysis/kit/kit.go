// Package kit is the minimal analysis driver behind informer-vet
// (DESIGN.md section 12). It mirrors the shape of the
// golang.org/x/tools/go/analysis API — Analyzer, Pass, Diagnostic, an
// analysistest-style fixture runner — but is built entirely on the
// standard library so the suite needs no external modules: packages are
// enumerated with `go list -deps -export -json`, module packages are
// type-checked from source, and everything outside the module resolves
// through compiler export data from the build cache.
//
// Analyzers communicate with the code they check through `//informer:`
// directive comments; see the Directives type for the grammar.
package kit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker. Run inspects a single
// package through its Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in
	// `//informer:ignore <name> <reason>` suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run analyzes one package. Diagnostics are delivered through the
	// pass; a non-nil error aborts the whole vet run (reserved for
	// internal failures, not findings).
	Run func(*Pass) error
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass carries one package's syntax, type information and directive
// index to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's type-checked, non-test syntax trees.
	Files []*ast.File
	// CommentFiles are parse-only trees for the package's _test.go
	// files. They carry no type information and exist so comment-only
	// analyzers (mdref) cover the same files the old CI grep did.
	CommentFiles []*ast.File
	Pkg          *types.Package
	Info         *types.Info
	// Dirs indexes the package's //informer: directives.
	Dirs *Directives
	// Mod is the module (or fixture) the package was loaded from.
	Mod *Module

	report func(Diagnostic)
}

// Reportf records a finding at pos. A `//informer:ignore <analyzer>
// <reason>` directive on the same line, or on the line directly above,
// suppresses it; the reason string is mandatory, so every suppression
// is a documented decision.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Dirs != nil && p.Dirs.IgnoredAt(p.Fset, pos, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// TypeOf is a nil-safe shorthand for the pass's expression types.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// Run applies every analyzer to every package of the module and returns
// the surviving diagnostics sorted by position.
func Run(mod *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range mod.Pkgs {
		// The directive grammar itself is checked centrally: a directive
		// with an unknown name or a missing mandatory reason is a
		// finding, so suppressions can never silently rot.
		for _, d := range pkg.Dirs.Malformed {
			diags = append(diags, Diagnostic{
				Pos:      d.Pos,
				Analyzer: "directive",
				Message:  fmt.Sprintf("malformed //informer:%s directive (unknown name or missing reason)", d.Name),
			})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:     a,
				Fset:         mod.Fset,
				Files:        pkg.Files,
				CommentFiles: pkg.CommentFiles,
				Pkg:          pkg.Types,
				Info:         pkg.Info,
				Dirs:         pkg.Dirs,
				Mod:          mod,
				report:       func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := mod.Fset.Position(diags[i].Pos), mod.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Deref unwraps pointers and (when the type-checker materializes them)
// alias types. The alias unwrap is done through an interface assertion
// so the package still compiles under toolchains that predate
// go/types.Alias.
func Deref(t types.Type) types.Type {
	for t != nil {
		if a, ok := t.(interface{ Rhs() types.Type }); ok {
			t = a.Rhs()
			continue
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	return t
}

// NamedOf returns the named type behind t (through pointers, aliases
// and generic instantiation), or nil.
func NamedOf(t types.Type) *types.Named {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return nil
	}
	return n.Origin()
}
