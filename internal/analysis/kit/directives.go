package kit

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive grammar (DESIGN.md section 12). A directive is a comment
// line of the form
//
//	//informer:<name> [args...]
//
// (no space after //, like //go: directives) and binds to the
// declaration whose doc comment block contains it:
//
//	//informer:deterministic            package doc — the package promises
//	                                    scheduling- and iteration-order-
//	                                    independent results (detrand applies)
//	//informer:bounded                  package doc — every queue in the
//	                                    package is contractually bounded
//	                                    (chanhygiene applies)
//	//informer:strict-errors            package doc — no dropped errors, no
//	                                    deadline-free network calls (errdrop
//	                                    applies)
//	//informer:snapshot                 type doc — values of this type are
//	                                    published immutable snapshots
//	                                    (snapshotsafe guards all writes)
//	//informer:mutates <reason>         func doc — this function is allowed
//	                                    to write through snapshot types
//	                                    (constructors, copy-on-write repair)
//	//informer:ignore <analyzer> <reason>
//	                                    same line or line above a finding —
//	                                    suppress that one diagnostic
//
// Reasons are mandatory wherever the grammar shows one; a directive
// with a missing reason is itself a diagnostic (the vet analyzer for
// the grammar lives in the drivers: Directives records the violation).
type Directive struct {
	Name string // e.g. "mutates"
	Args string // raw text after the name, space-trimmed
	Pos  token.Pos
}

// Directives indexes one package's //informer: directive comments.
type Directives struct {
	pkg     []Directive
	funcs   map[*ast.FuncDecl][]Directive
	types   map[string][]Directive
	ignores map[string]map[int][]Directive // filename -> line -> directives
	// Malformed records directives that violate the grammar (unknown
	// name, missing mandatory reason); the drivers surface them.
	Malformed []Directive
}

const directivePrefix = "//informer:"

// knownDirectives maps each directive name to whether its argument
// (reason) is mandatory.
var knownDirectives = map[string]bool{
	"deterministic": false,
	"bounded":       false,
	"strict-errors": false,
	"snapshot":      false,
	"mutates":       true,
	"ignore":        true,
}

func parseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	name, args, _ := strings.Cut(rest, " ")
	return Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

func (d Directive) wellFormed() bool {
	needsArgs, known := knownDirectives[d.Name]
	if !known {
		return false
	}
	if d.Name == "ignore" {
		// ignore needs an analyzer name AND a reason.
		_, reason, ok := strings.Cut(d.Args, " ")
		return ok && strings.TrimSpace(reason) != ""
	}
	return !needsArgs || d.Args != ""
}

func groupDirectives(g *ast.CommentGroup) []Directive {
	if g == nil {
		return nil
	}
	var out []Directive
	for _, c := range g.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// extractDirectives walks a package's files and builds the index. The
// ignore index is built from every comment in the file, not just doc
// blocks, because suppressions ride on arbitrary statements.
func extractDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	ds := &Directives{
		funcs:   map[*ast.FuncDecl][]Directive{},
		types:   map[string][]Directive{},
		ignores: map[string]map[int][]Directive{},
	}
	note := func(d Directive) {
		if !d.wellFormed() {
			ds.Malformed = append(ds.Malformed, d)
		}
	}
	for _, f := range files {
		for _, d := range groupDirectives(f.Doc) {
			note(d)
			ds.pkg = append(ds.pkg, d)
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				for _, d := range groupDirectives(decl.Doc) {
					note(d)
					ds.funcs[decl] = append(ds.funcs[decl], d)
				}
			case *ast.GenDecl:
				declDirs := groupDirectives(decl.Doc)
				for _, d := range declDirs {
					note(d)
				}
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					specDirs := groupDirectives(ts.Doc)
					for _, d := range specDirs {
						note(d)
					}
					ds.types[ts.Name.Name] = append(ds.types[ts.Name.Name], declDirs...)
					ds.types[ts.Name.Name] = append(ds.types[ts.Name.Name], specDirs...)
				}
			}
		}
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parseDirective(c)
				if !ok || d.Name != "ignore" {
					continue
				}
				note(d)
				pos := fset.Position(c.Pos())
				byLine := ds.ignores[pos.Filename]
				if byLine == nil {
					byLine = map[int][]Directive{}
					ds.ignores[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return ds
}

// Package reports the package-level directive with the given name.
func (ds *Directives) Package(name string) (Directive, bool) {
	for _, d := range ds.pkg {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// Func reports the directive on a function declaration's doc block.
func (ds *Directives) Func(fd *ast.FuncDecl, name string) (Directive, bool) {
	for _, d := range ds.funcs[fd] {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// TypeHas reports whether the named type's declaration carries the
// directive.
func (ds *Directives) TypeHas(typeName, name string) bool {
	for _, d := range ds.types[typeName] {
		if d.Name == name {
			return true
		}
	}
	return false
}

// IgnoredAt reports whether a well-formed
// `//informer:ignore <analyzer> <reason>` sits on pos's line or the
// line directly above it.
func (ds *Directives) IgnoredAt(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	byLine := ds.ignores[p.Filename]
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range byLine[line] {
			target, reason, _ := strings.Cut(d.Args, " ")
			if target == analyzer && strings.TrimSpace(reason) != "" {
				return true
			}
		}
	}
	return false
}
