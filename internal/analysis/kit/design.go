package kit

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
)

var headingRe = regexp.MustCompile(`^#{2,3}\s+([0-9]+(?:\.[0-9]+)?)[. ]`)

// DesignAnchors parses DESIGN.md at the module root once and returns
// the set of section anchors it defines: "6" for a `## 6. ...` heading,
// "5.1" for `### 5.1 ...`. mdref resolves both `§N` tokens and
// "DESIGN.md section N" phrases against this set.
func (m *Module) DesignAnchors() (map[string]bool, error) {
	if m.designLoaded {
		return m.designAnchors, m.designErr
	}
	m.designLoaded = true
	f, err := os.Open(filepath.Join(m.Root, "DESIGN.md"))
	if err != nil {
		m.designErr = fmt.Errorf("DESIGN.md not found at module root %s", m.Root)
		return nil, m.designErr
	}
	defer f.Close()
	anchors := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if mseg := headingRe.FindStringSubmatch(sc.Text()); mseg != nil {
			anchors[mseg[1]] = true
		}
	}
	if err := sc.Err(); err != nil {
		m.designErr = err
		return nil, err
	}
	m.designAnchors = anchors
	return anchors, nil
}
