package kit

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"testing"
)

// want comments follow the x/tools analysistest convention: a fixture
// line carries `// want "re"` (one quoted regexp per expected
// diagnostic on that line; backquotes also accepted).
var wantRe = regexp.MustCompile("// want (.*)$")
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type wantKey struct {
	file string
	line int
}

// RunTest loads testdata/src/<pkg> for each named fixture package, runs
// the analyzer over it, and checks the produced diagnostics against the
// fixture's `// want` comments — every diagnostic must be expected and
// every expectation must fire, so seeded-bad fixtures prove the
// analyzer actually detects the violation.
func RunTest(t *testing.T, testdata string, a *Analyzer, pkgs ...string) {
	t.Helper()
	moduleDir, err := ModuleRootFromWD()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		mod, err := LoadFixture(moduleDir, dir)
		if err != nil {
			t.Fatalf("%s: load: %v", pkg, err)
		}
		diags, err := Run(mod, []*Analyzer{a})
		if err != nil {
			t.Fatalf("%s: run: %v", pkg, err)
		}
		checkWants(t, mod, diags)
	}
}

func checkWants(t *testing.T, mod *Module, diags []Diagnostic) {
	t.Helper()
	wants := map[wantKey][]string{}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			collectWants(mod.Fset, f, wants)
		}
	}
	matched := map[wantKey][]bool{}
	for k, ws := range wants {
		matched[k] = make([]bool, len(ws))
	}
	for _, d := range diags {
		pos := mod.Fset.Position(d.Pos)
		k := wantKey{pos.Filename, pos.Line}
		ok := false
		for i, w := range wants[k] {
			if matched[k][i] {
				continue
			}
			re, err := regexp.Compile(w)
			if err != nil {
				t.Errorf("%s:%d: bad want regexp %q: %v", k.file, k.line, w, err)
				return
			}
			if re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", k.file, k.line, d.Analyzer, d.Message)
		}
	}
	for k, ws := range wants {
		for i, w := range ws {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q did not fire", k.file, k.line, w)
			}
		}
	}
}

func collectWants(fset *token.FileSet, f *ast.File, wants map[wantKey][]string) {
	for _, g := range f.Comments {
		for _, c := range g.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			k := wantKey{pos.Filename, pos.Line}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				pat := arg[1]
				if pat == "" {
					pat = arg[2]
				}
				wants[k] = append(wants[k], pat)
			}
		}
	}
}

// DiagString renders a diagnostic the way informer-vet prints it.
func DiagString(fset *token.FileSet, d Diagnostic) string {
	pos := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: %s [%s]", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
}
