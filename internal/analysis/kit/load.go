package kit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Module is a loaded set of packages plus the module-wide indexes the
// analyzers share: the fileset, the directive-annotated type set, and
// the filesystem root that markdown references resolve against.
type Module struct {
	// Path is the module path ("fixture" for analysistest loads).
	Path string
	// Root is the directory holding go.mod — and DESIGN.md, README.md
	// etc., which mdref resolves against. Fixture loads point Root at
	// the fixture directory so fixtures carry their own markdown.
	Root string
	Fset *token.FileSet
	// Pkgs holds the module's packages in dependency order.
	Pkgs []*Package
	// typeDirs maps "pkgpath.TypeName" to the directive names on that
	// type's declaration, so analyzers can test cross-package types.
	typeDirs map[string]map[string]bool

	designAnchors map[string]bool
	designErr     error
	designLoaded  bool
}

// A Package is one type-checked module package.
type Package struct {
	Path         string
	Dir          string
	Files        []*ast.File
	CommentFiles []*ast.File
	Types        *types.Package
	Info         *types.Info
	Dirs         *Directives
}

// TypeDirective reports whether the named type declared in pkgPath
// carries the directive (e.g. "snapshot"). It spans every loaded
// package, so an analyzer checking package A can test a type from
// package B.
func (m *Module) TypeDirective(pkgPath, typeName, directive string) bool {
	return m.typeDirs[pkgPath+"."+typeName][directive]
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	Standard     bool
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	Module       *struct {
		Path string
		Dir  string
		Main bool
	}
}

func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-deps", "-export", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup adapts a path->export-file map to the gc importer's
// lookup signature.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadModule enumerates patterns (typically "./...") with the go tool
// and type-checks every package of the main module from source.
// Dependencies outside the module — for this repo, only the standard
// library — are imported from compiler export data, so loading works
// fully offline.
func LoadModule(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mod := &Module{Fset: fset, typeDirs: map[string]map[string]bool{}}
	exports := map[string]string{}
	byPath := map[string]listPkg{}
	var order []string
	for _, p := range listed {
		if p.Module != nil && p.Module.Main {
			if mod.Path == "" {
				mod.Path = p.Module.Path
				mod.Root = p.Module.Dir
			}
			byPath[p.ImportPath] = p
			order = append(order, p.ImportPath)
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	if mod.Path == "" {
		return nil, fmt.Errorf("no main-module packages matched %q in %s", patterns, dir)
	}
	base := importer.ForCompiler(fset, "gc", exportLookup(exports))

	checked := map[string]*Package{}
	var load func(path string) (*Package, error)
	load = func(path string) (*Package, error) {
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		p := byPath[path]
		files, err := parseAll(fset, p.Dir, p.GoFiles, p.CgoFiles)
		if err != nil {
			return nil, err
		}
		imp := importerFunc(func(ipath string) (*types.Package, error) {
			if _, ok := byPath[ipath]; ok {
				dep, err := load(ipath)
				if err != nil {
					return nil, err
				}
				return dep.Types, nil
			}
			return base.Import(ipath)
		})
		tpkg, info, err := check(fset, path, files, imp)
		if err != nil {
			return nil, err
		}
		testFiles, err := parseAll(fset, p.Dir, p.TestGoFiles, p.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		pkg := &Package{
			Path:         path,
			Dir:          p.Dir,
			Files:        files,
			CommentFiles: testFiles,
			Types:        tpkg,
			Info:         info,
			Dirs:         extractDirectives(fset, files),
		}
		checked[path] = pkg
		mod.Pkgs = append(mod.Pkgs, pkg)
		return pkg, nil
	}
	sort.Strings(order)
	for _, path := range order {
		if _, err := load(path); err != nil {
			return nil, err
		}
	}
	mod.indexTypeDirectives()
	return mod, nil
}

// LoadFixture type-checks a single directory as one package, with
// moduleDir supplying export data for its (standard-library) imports.
// Root — the directory mdref resolves markdown references against — is
// the fixture directory itself.
func LoadFixture(moduleDir, fixtureDir string) (*Module, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	files, err := parseAll(fset, fixtureDir, names, nil)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", fixtureDir)
	}
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			imports = append(imports, strings.Trim(spec.Path.Value, `"`))
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		listed, err := goList(moduleDir, imports...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	pkgPath := "fixture/" + filepath.Base(fixtureDir)
	tpkg, info, err := check(fset, pkgPath, files, importerFunc(imp.Import))
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(fixtureDir)
	if err != nil {
		return nil, err
	}
	mod := &Module{Path: "fixture", Root: abs, Fset: fset, typeDirs: map[string]map[string]bool{}}
	mod.Pkgs = []*Package{{
		Path:  pkgPath,
		Dir:   abs,
		Files: files,
		Types: tpkg,
		Info:  info,
		Dirs:  extractDirectives(fset, files),
	}}
	mod.indexTypeDirectives()
	return mod, nil
}

func parseAll(fset *token.FileSet, dir string, lists ...[]string) ([]*ast.File, error) {
	var files []*ast.File
	for _, list := range lists {
		for _, name := range list {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
	}
	return files, nil
}

func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	var errs []string
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err.Error())
			}
		},
	}
	info := newInfo()
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("type errors in %s:\n  %s", path, strings.Join(errs, "\n  "))
	}
	return tpkg, info, nil
}

func (m *Module) indexTypeDirectives() {
	for _, pkg := range m.Pkgs {
		for typeName, dirs := range pkg.Dirs.types {
			for _, d := range dirs {
				key := pkg.Path + "." + typeName
				if m.typeDirs[key] == nil {
					m.typeDirs[key] = map[string]bool{}
				}
				m.typeDirs[key][d.Name] = true
			}
		}
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ModuleRootFromWD walks up from the working directory to the
// enclosing go.mod — how analyzer tests find the module so fixture
// loads can resolve stdlib export data.
func ModuleRootFromWD() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}
