// Package a exercises chanhygiene: unbuffered data channels and
// goroutines without a termination path must fire in a package
// annotated bounded.
//
//informer:bounded
package a

import (
	"context"
	"sync"
)

type item struct{ n int }

func makes() {
	a := make(chan item) // want `unbuffered data channel`
	b := make(chan item, 16)
	c := make(chan struct{})
	d := make(chan int) // want `unbuffered data channel`
	_, _, _, _ = a, b, c, d
}

func launches(ctx context.Context, in chan item) {
	go func() { // ok: ranges over a channel, ends on close
		for range in {
		}
	}()
	go worker(ctx) // ok: the context is the termination contract
	go selective(nil, nil)
	go naked()  // want `goroutine launch without a visible termination path`
	go func() { // want `goroutine launch without a visible termination path`
		for i := 0; ; i++ {
			_ = i
		}
	}()
	go func() { //informer:ignore chanhygiene deliberate suppression exercised by the fixture
		for {
		}
	}()
}

func worker(ctx context.Context) {
	<-ctx.Done()
}

func joins(wg *sync.WaitGroup, cond *sync.Cond) {
	go func() { // ok: WaitGroup.Wait is a blocking join
		wg.Wait()
	}()
	go func() { // ok: Cond.Wait ties the lifetime to its peers
		cond.L.Lock()
		cond.Wait()
		cond.L.Unlock()
	}()
}

func selective(a, done chan item) {
	for {
		select {
		case <-a:
		case <-done:
			return
		}
	}
}

func naked() {
	for {
	}
}
