// Package chanhygiene polices the queue contracts of
// `//informer:bounded` packages — internal/subscribe and
// internal/deliver, where every queue is bounded-and-coalescing by
// design (DESIGN.md sections 9 and 10). Data channels must be created
// with an explicit capacity (an unbuffered data channel couples
// producer to consumer and lets a slow sink block the tick), and every
// goroutine launch must have a visible termination path: a
// context/channel argument, or a receive, channel range, select, or
// blocking sync join (Cond.Wait, WaitGroup.Wait) in the launched body.
package chanhygiene

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/informing-observers/informer/internal/analysis/kit"
)

// Analyzer is the chanhygiene checker.
var Analyzer = &kit.Analyzer{
	Name: "chanhygiene",
	Doc:  "explicit channel capacities and goroutine termination paths in //informer:bounded packages",
	Run:  run,
}

func run(pass *kit.Pass) error {
	if _, ok := pass.Dirs.Package("bounded"); !ok {
		return nil
	}
	bodies := funcBodies(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkMake(pass, n)
			case *ast.GoStmt:
				checkGo(pass, n, bodies)
			}
			return true
		})
	}
	return nil
}

// funcBodies maps declared function objects to their bodies so a
// `go f(...)` launch can be checked against f's implementation.
func funcBodies(pass *kit.Pass) map[types.Object]*ast.BlockStmt {
	m := map[types.Object]*ast.BlockStmt{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					m[obj] = fd.Body
				}
			}
		}
	}
	return m
}

func checkMake(pass *kit.Pass, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return
	}
	if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "make" {
		return
	}
	ch, ok := kit.Deref(pass.TypeOf(call.Args[0])).Underlying().(*types.Chan)
	if !ok {
		return
	}
	// chan struct{} carries no data; unbuffered close/signal channels
	// are part of the termination idiom, not a queue.
	if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
		return
	}
	pass.Reportf(call.Pos(), "unbuffered data channel in bounded-queue package; give it an explicit capacity")
}

func checkGo(pass *kit.Pass, g *ast.GoStmt, bodies map[types.Object]*ast.BlockStmt) {
	// A context or channel handed to the goroutine is a termination
	// contract in itself.
	for _, arg := range g.Call.Args {
		if isCtxOrChan(pass.TypeOf(arg)) {
			return
		}
	}
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		body = bodies[pass.Info.Uses[fun]]
	case *ast.SelectorExpr:
		body = bodies[pass.Info.Uses[fun.Sel]]
	}
	if body != nil && hasTerminationPath(pass, body) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine launch without a visible termination path (no ctx/done/channel argument, no receive/select/channel-range in the body)")
}

func isCtxOrChan(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named := kit.NamedOf(t); named != nil {
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
	}
	return false
}

func hasTerminationPath(pass *kit.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if _, ok := kit.Deref(pass.TypeOf(n.X)).Underlying().(*types.Chan); ok {
				found = true
			}
		case *ast.CallExpr:
			if isSyncWait(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSyncWait reports whether call is Cond.Wait or WaitGroup.Wait — a
// blocking rendezvous that ties the goroutine's lifetime to its peers
// just as visibly as a channel receive does.
func isSyncWait(pass *kit.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Wait" {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}
