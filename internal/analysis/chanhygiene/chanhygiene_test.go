package chanhygiene_test

import (
	"testing"

	"github.com/informing-observers/informer/internal/analysis/chanhygiene"
	"github.com/informing-observers/informer/internal/analysis/kit"
)

func TestChanHygiene(t *testing.T) {
	kit.RunTest(t, "testdata", chanhygiene.Analyzer, "a")
}
