package detrand_test

import (
	"testing"

	"github.com/informing-observers/informer/internal/analysis/detrand"
	"github.com/informing-observers/informer/internal/analysis/kit"
)

func TestDetRand(t *testing.T) {
	kit.RunTest(t, "testdata", detrand.Analyzer, "a")
}
