// Package detrand keeps `//informer:deterministic` packages —
// internal/quality, internal/shard, internal/stats and the facade scan
// path — provably scheduling- and iteration-order-independent, the
// property the parallel fan-out equivalence suites rely on (DESIGN.md
// sections 6 and 11). It flags the constructs that smuggle
// nondeterminism into results: map-range loops whose iteration order
// escapes into ordered data (appends, slice writes, channel sends,
// string concatenation) unless the destination is visibly sorted
// afterwards, wall-clock reads (time.Now/Since/Until), math/rand, and
// select statements that race multiple ready channels.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/informing-observers/informer/internal/analysis/kit"
)

// Analyzer is the detrand checker.
var Analyzer = &kit.Analyzer{
	Name: "detrand",
	Doc:  "no order-escaping map iteration, wall-clock, math/rand or racy select in //informer:deterministic packages",
	Run:  run,
}

func run(pass *kit.Pass) error {
	if _, ok := pass.Dirs.Package("deterministic"); !ok {
		return nil
	}
	for _, file := range pass.Files {
		for _, spec := range file.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(spec.Pos(), "import of %s in deterministic package", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkClock(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			case *ast.BlockStmt:
				checkStmts(pass, n.List)
			case *ast.CaseClause:
				checkStmts(pass, n.Body)
			case *ast.CommClause:
				checkStmts(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

func checkClock(pass *kit.Pass, sel *ast.SelectorExpr) {
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return
	}
	switch obj.Name() {
	case "Now", "Since", "Until":
		pass.Reportf(sel.Pos(), "call to time.%s in deterministic package (thread the timeline through explicitly)", obj.Name())
	}
}

func checkSelect(pass *kit.Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(sel.Pos(), "select over %d channels is scheduling-dependent in deterministic package", comm)
	}
}

// checkStmts scans a statement list so that a map-range loop can be
// related to the statements that follow it: appends whose destination
// is sorted later in the same list are the canonical deterministic
// idiom and pass clean.
func checkStmts(pass *kit.Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		if _, isMap := kit.Deref(pass.TypeOf(rng.X)).Underlying().(*types.Map); !isMap {
			continue
		}
		checkMapRange(pass, rng, stmts[i+1:])
	}
}

func checkMapRange(pass *kit.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked on its own, against the
			// statements that follow *it* — attributing its writes to the
			// outer loop would miss a sort placed just after the inner one.
			if _, isMap := kit.Deref(pass.TypeOf(n.X)).Underlying().(*types.Map); isMap {
				return false
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "map iteration order escapes via channel send in deterministic package")
		case *ast.AssignStmt:
			checkAssign(pass, n, rest)
		}
		return true
	})
}

func checkAssign(pass *kit.Pass, as *ast.AssignStmt, rest []ast.Stmt) {
	// out = append(out, ...) — clean only if out is sorted after the loop.
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
			if sortedLater(types.ExprString(as.Lhs[0]), rest) {
				return
			}
			pass.Reportf(as.Pos(), "map iteration order escapes via append in deterministic package (sort the result after the loop)")
			return
		}
	}
	for _, lhs := range as.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			switch kit.Deref(pass.TypeOf(ix.X)).Underlying().(type) {
			case *types.Slice, *types.Array:
				pass.Reportf(as.Pos(), "map iteration order escapes via slice write in deterministic package")
			}
		}
	}
	if as.Tok == token.ADD_ASSIGN {
		if b, ok := kit.Deref(pass.TypeOf(as.Lhs[0])).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			pass.Reportf(as.Pos(), "map iteration order escapes via string concatenation in deterministic package")
		}
	}
}

func isBuiltinAppend(pass *kit.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether a sort or slices call whose argument
// renders to the same expression as the append target (`out`,
// `rq.minDim`, …) appears in the statements after the loop.
func sortedLater(target string, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if types.ExprString(arg) == target {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
