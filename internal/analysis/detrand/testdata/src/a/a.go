// Package a exercises detrand: order-escaping map iteration,
// wall-clock reads, math/rand and racy selects must fire in a package
// annotated deterministic.
//
//informer:deterministic
package a

import (
	"math/rand" // want `import of math/rand in deterministic package`
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want `call to time\.Now in deterministic package`
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want `call to time\.Since in deterministic package`
}

func rnd() int { return rand.Intn(10) }

func escapes(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration order escapes via append`
	}
	return out
}

func sortedAfter(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type box struct{ keys []string }

func sortedAfterField(m map[string]int, b *box) {
	for k := range m {
		b.keys = append(b.keys, k)
	}
	sort.Slice(b.keys, func(i, j int) bool { return b.keys[i] < b.keys[j] })
}

func fieldEscapes(m map[string]int, b *box) {
	for k := range m {
		b.keys = append(b.keys, k) // want `map iteration order escapes via append`
	}
}

func nestedSortedInner(mm map[string]map[string]int) map[string][]string {
	out := make(map[string][]string, len(mm))
	for cat, inner := range mm {
		var keys []string
		for k := range inner {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out[cat] = keys
	}
	return out
}

func sliceWrite(m map[string]int, dst []int) {
	i := 0
	for _, v := range m {
		dst[i] = v // want `map iteration order escapes via slice write`
		i++
	}
}

func send(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `map iteration order escapes via channel send`
	}
}

func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `map iteration order escapes via string concatenation`
	}
	return s
}

func commutative(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func racy(a, b chan int) int {
	select { // want `select over 2 channels is scheduling-dependent`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func notRacy(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
	}
	return 0
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//informer:ignore detrand order proven irrelevant by the fixture
		out = append(out, k)
	}
	return out
}
