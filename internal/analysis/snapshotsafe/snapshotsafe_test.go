package snapshotsafe_test

import (
	"testing"

	"github.com/informing-observers/informer/internal/analysis/kit"
	"github.com/informing-observers/informer/internal/analysis/snapshotsafe"
)

func TestSnapshotSafe(t *testing.T) {
	kit.RunTest(t, "testdata", snapshotsafe.Analyzer, "a")
}
