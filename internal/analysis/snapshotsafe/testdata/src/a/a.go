// Package a exercises snapshotsafe: writes through //informer:snapshot
// types must fire outside //informer:mutates functions.
package a

// State is a published snapshot.
//
//informer:snapshot
type State struct {
	Count int
	Rows  [][]float64
	Meta  map[string]int
	Next  *State
}

type plain struct {
	n int
	m map[string]int
}

func bad(st *State) {
	st.Count = 1                   // want `assignment writes through snapshot type a\.State`
	st.Rows[0][1] = 2              // want `assignment writes through snapshot type a\.State`
	st.Meta["k"] = 3               // want `assignment writes through snapshot type a\.State`
	st.Count++                     // want `increment writes through snapshot type a\.State`
	st.Next.Count = 4              // want `assignment writes through snapshot type a\.State`
	delete(st.Meta, "k")           // want `delete writes through snapshot type a\.State`
	copy(st.Rows[0], []float64{1}) // want `copy writes through snapshot type a\.State`
}

func okLocal() {
	var p plain
	p.n = 1
	p.m = map[string]int{"k": 1}
	p.m["k"] = 2
}

func load() *State { return nil }

// okBind rebinds variables of snapshot type without writing through
// them — loading a snapshot from an atomic pointer must stay clean.
func okBind(st *State) {
	st = load()
	cur := load()
	cur = st
	_ = cur
}

func badDeref(st *State) {
	*st = State{} // want `assignment writes through snapshot type a\.State`
}

// build constructs the next snapshot before publication, so its writes
// are deliberate.
//
//informer:mutates copy-on-write constructor, snapshot not yet published
func build() *State {
	st := &State{Meta: map[string]int{}}
	st.Count = 1
	st.Meta["k"] = 2
	return st
}

func suppressed(st *State) {
	st.Count = 5 //informer:ignore snapshotsafe deliberate suppression exercised by the fixture
}
