// Package snapshotsafe enforces the copy-on-write discipline behind
// the engine's published immutable snapshots (DESIGN.md sections 6 and
// 11): once a value of a type annotated `//informer:snapshot` —
// assessState, the quality measure matrix, webgen.World — is published
// behind an atomic pointer, nothing may write through it. The analyzer
// flags every assignment, increment, delete or copy whose target chain
// passes through a snapshot type, anywhere in the module, unless the
// enclosing function's doc block carries `//informer:mutates <reason>`
// (constructors and the copy-on-write repair paths, which mutate fresh
// private copies before publication).
package snapshotsafe

import (
	"go/ast"
	"go/types"

	"github.com/informing-observers/informer/internal/analysis/kit"
)

// Analyzer is the snapshotsafe checker.
var Analyzer = &kit.Analyzer{
	Name: "snapshotsafe",
	Doc:  "no writes through //informer:snapshot types outside //informer:mutates functions",
	Run:  run,
}

func run(pass *kit.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, allowed := pass.Dirs.Func(fd, "mutates"); allowed {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

func checkBody(pass *kit.Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isBareIdent(lhs) {
					continue // rebinding a variable, not a write through it
				}
				checkWrite(pass, lhs, "assignment")
			}
		case *ast.IncDecStmt:
			if !isBareIdent(n.X) {
				checkWrite(pass, n.X, "increment")
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

// checkCall flags the mutating builtins: delete on a snapshot map,
// copy into a snapshot slice.
func checkCall(pass *kit.Pass, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if obj, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin || (obj.Name() != "delete" && obj.Name() != "copy") {
		return
	}
	checkWrite(pass, call.Args[0], id.Name)
}

// isBareIdent reports whether e is a plain (possibly parenthesised)
// identifier. Assigning to one rebinds the variable rather than writing
// through the value it held, so `st := c.state.Load()` is clean even
// though st has a snapshot type; `*st = v` and `st.f = v` are not.
func isBareIdent(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return true
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// checkWrite walks the lvalue's access chain (x.f, x[i], *x, parens);
// if any link has a snapshot-annotated type the write mutates state
// reachable from a published snapshot.
func checkWrite(pass *kit.Pass, lhs ast.Expr, what string) {
	for e := lhs; ; {
		if name := snapshotTypeName(pass, e); name != "" {
			pass.Reportf(lhs.Pos(), "%s writes through snapshot type %s outside an //informer:mutates function", what, name)
			return
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return
		}
	}
}

func snapshotTypeName(pass *kit.Pass, e ast.Expr) string {
	named := kit.NamedOf(pass.TypeOf(e))
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if pass.Mod.TypeDirective(obj.Pkg().Path(), obj.Name(), "snapshot") {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return ""
}
