// Package analysis assembles the informer-vet suite: the project's
// load-bearing conventions — immutable published snapshots,
// scheduling-independent fan-out, bounded queues, delivery-path error
// discipline, resolvable documentation references — expressed as
// machine-checked analyzers (DESIGN.md section 12). cmd/informer-vet
// runs the suite over the module and CI requires it to be clean.
package analysis

import (
	"github.com/informing-observers/informer/internal/analysis/chanhygiene"
	"github.com/informing-observers/informer/internal/analysis/detrand"
	"github.com/informing-observers/informer/internal/analysis/errdrop"
	"github.com/informing-observers/informer/internal/analysis/kit"
	"github.com/informing-observers/informer/internal/analysis/mdref"
	"github.com/informing-observers/informer/internal/analysis/snapshotsafe"
)

// Suite returns the informer-vet analyzers in stable order.
func Suite() []*kit.Analyzer {
	return []*kit.Analyzer{
		snapshotsafe.Analyzer,
		detrand.Analyzer,
		chanhygiene.Analyzer,
		errdrop.Analyzer,
		mdref.Analyzer,
	}
}
