// Package errdrop guards the delivery-critical packages annotated
// `//informer:strict-errors` — internal/deliver, internal/retry and the
// crawler — where a silently discarded error is a lost delivery or a
// miscounted retry (DESIGN.md section 10). It flags call results whose
// error is dropped (expression statements, defers, go statements,
// blank assignments) and outbound network calls with no deadline path:
// the package-level http helpers, http.DefaultClient, context-free
// http.NewRequest, and net.Dial.
package errdrop

import (
	"go/ast"
	"go/types"

	"github.com/informing-observers/informer/internal/analysis/kit"
)

// Analyzer is the errdrop checker.
var Analyzer = &kit.Analyzer{
	Name: "errdrop",
	Doc:  "no dropped errors or deadline-free network calls in //informer:strict-errors packages",
	Run:  run,
}

var errType = types.Universe.Lookup("error").Type()

func run(pass *kit.Pass) error {
	if _, ok := pass.Dirs.Package("strict-errors"); !ok {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDropped(pass, call, "call result")
				}
			case *ast.DeferStmt:
				checkDropped(pass, n.Call, "deferred call result")
			case *ast.GoStmt:
				checkDropped(pass, n.Call, "goroutine call result")
			case *ast.AssignStmt:
				checkBlank(pass, n)
			case *ast.SelectorExpr:
				checkDeadline(pass, n)
			}
			return true
		})
	}
	return nil
}

func returnsError(pass *kit.Pass, call *ast.CallExpr) bool {
	switch t := pass.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
	default:
		if t != nil && types.Identical(t, errType) {
			return true
		}
	}
	return false
}

func checkDropped(pass *kit.Pass, call *ast.CallExpr, what string) {
	if !returnsError(pass, call) || stdoutPrint(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%s drops an error in strict-errors package", what)
}

// stdoutPrint reports fmt.Print/Printf/Println — console output whose
// error return is conventionally meaningless. The writer-directed
// fmt.Fprint* family stays flagged: in these packages the writer is
// often a network connection.
func stdoutPrint(pass *kit.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return false
	}
	switch obj.Name() {
	case "Print", "Printf", "Println":
		return true
	}
	return false
}

func checkBlank(pass *kit.Pass, as *ast.AssignStmt) {
	// v, _ := f() with the blank in an error position, or _ = err.
	types_ := make([]types.Type, len(as.Lhs))
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if tuple, ok := pass.TypeOf(as.Rhs[0]).(*types.Tuple); ok && tuple.Len() == len(as.Lhs) {
			for i := range as.Lhs {
				types_[i] = tuple.At(i).Type()
			}
		}
	} else if len(as.Rhs) == len(as.Lhs) {
		for i := range as.Lhs {
			types_[i] = pass.TypeOf(as.Rhs[i])
		}
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || types_[i] == nil {
			continue
		}
		if types.Identical(types_[i], errType) {
			pass.Reportf(lhs.Pos(), "error discarded into blank identifier in strict-errors package")
		}
	}
}

func checkDeadline(pass *kit.Pass, sel *ast.SelectorExpr) {
	// Only qualified package-level references (http.Get, net.Dial) —
	// methods that share a name, like http.Header.Get, are unrelated.
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if _, isPkg := pass.Info.Uses[base].(*types.PkgName); !isPkg {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "net/http":
		switch obj.Name() {
		case "Get", "Post", "PostForm", "Head":
			pass.Reportf(sel.Pos(), "http.%s has no deadline; use a Client with Timeout and NewRequestWithContext", obj.Name())
		case "NewRequest":
			pass.Reportf(sel.Pos(), "http.NewRequest carries no context; use http.NewRequestWithContext")
		case "DefaultClient":
			pass.Reportf(sel.Pos(), "http.DefaultClient has no Timeout; construct a Client with one")
		}
	case "net":
		if obj.Name() == "Dial" {
			pass.Reportf(sel.Pos(), "net.Dial has no deadline; use a net.Dialer with Timeout or DialContext")
		}
	}
}
