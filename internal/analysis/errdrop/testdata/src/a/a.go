// Package a exercises errdrop: dropped errors and deadline-free
// network calls must fire in a package annotated strict-errors.
//
//informer:strict-errors
package a

import (
	"errors"
	"fmt"
	"net"
	"net/http"
)

func mayFail() error { return errors.New("x") }

func value() (int, error) { return 0, errors.New("x") }

func drops() {
	mayFail()       // want `call result drops an error`
	defer mayFail() // want `deferred call result drops an error`
	go mayFail()    // want `goroutine call result drops an error`
	v, _ := value() // want `error discarded into blank identifier`
	_ = mayFail()   // want `error discarded into blank identifier`
	_ = v
	mayFail() //informer:ignore errdrop deliberate suppression exercised by the fixture
}

func handles() error {
	if err := mayFail(); err != nil {
		return err
	}
	v, err := value()
	fmt.Println(v)
	return err
}

func network(c *http.Client) error {
	req, err := http.NewRequest("GET", "http://example.com", nil) // want `http\.NewRequest carries no context`
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()                              // want `call result drops an error`
	_ = http.DefaultClient                         // want `http\.DefaultClient has no Timeout`
	conn, err := net.Dial("tcp", "example.com:80") // want `net\.Dial has no deadline`
	if err != nil {
		return err
	}
	return conn.Close()
}

func helpers() {
	http.Get("http://example.com") // want `http\.Get has no deadline` `call result drops an error`
}

// methodsNamedGet shares names with the package helpers but carries no
// deadline obligation — http.Header.Get must stay clean.
func methodsNamedGet(resp *http.Response) string {
	return resp.Header.Get("ETag")
}
