package errdrop_test

import (
	"testing"

	"github.com/informing-observers/informer/internal/analysis/errdrop"
	"github.com/informing-observers/informer/internal/analysis/kit"
)

func TestErrDrop(t *testing.T) {
	kit.RunTest(t, "testdata", errdrop.Analyzer, "a")
}
