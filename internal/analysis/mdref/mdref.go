// Package mdref is the analyzer form of the old docs CI grep, with the
// anchor checking the grep never had: every markdown file a Go comment
// cites must exist at the module root, and every DESIGN.md section
// reference — a `§N` / `§N.M` token or a "DESIGN.md section N" /
// "sections N to M" phrase — must resolve to a real heading in
// DESIGN.md. It scans _test.go comments too, so coverage is a strict
// superset of the grep it replaces (ROADMAP standing constraint).
package mdref

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"github.com/informing-observers/informer/internal/analysis/kit"
)

// Analyzer is the mdref checker.
var Analyzer = &kit.Analyzer{
	Name: "mdref",
	Doc:  "markdown files and DESIGN.md section anchors cited in Go comments must resolve",
	Run:  run,
}

var (
	mdFileRe  = regexp.MustCompile(`[A-Za-z0-9_][A-Za-z0-9_.-]*\.md`)
	anchorRe  = regexp.MustCompile(`§\s*([0-9]+(?:\.[0-9]+)?)`)
	sectionRe = regexp.MustCompile(`DESIGN\.md,?\s+[Ss]ections?\s+((?:[0-9]+(?:\.[0-9]+)?|and|to|,|\s)+)`)
	numOrToRe = regexp.MustCompile(`[0-9]+(?:\.[0-9]+)?|to`)
)

func run(pass *kit.Pass) error {
	files := append([]*ast.File{}, pass.Files...)
	files = append(files, pass.CommentFiles...)
	for _, f := range files {
		for _, g := range f.Comments {
			text, posMap := flatten(g)
			checkFiles(pass, text, posMap)
			checkAnchors(pass, text, posMap)
		}
	}
	return nil
}

// flatten joins a comment group into one searchable string (comment
// markers stripped, lines space-joined so phrases may wrap) and a
// parallel byte->token.Pos map for precise reporting.
func flatten(g *ast.CommentGroup) (string, []token.Pos) {
	var sb strings.Builder
	var posMap []token.Pos
	for _, c := range g.List {
		text := c.Text
		base := c.Pos()
		if strings.HasPrefix(text, "//") {
			text = text[2:]
			base += 2
		} else if strings.HasPrefix(text, "/*") && strings.HasSuffix(text, "*/") {
			text = text[2 : len(text)-2]
			base += 2
		}
		for i := 0; i < len(text); i++ {
			// Inside block comments, newlines become spaces so the
			// phrase regex can span them; positions still point at the
			// source byte.
			if text[i] == '\n' {
				sb.WriteByte(' ')
			} else {
				sb.WriteByte(text[i])
			}
			posMap = append(posMap, base+token.Pos(i))
		}
		sb.WriteByte(' ')
		posMap = append(posMap, c.End())
	}
	return sb.String(), posMap
}

func checkFiles(pass *kit.Pass, text string, posMap []token.Pos) {
	for _, loc := range mdFileRe.FindAllStringIndex(text, -1) {
		name := text[loc[0]:loc[1]]
		if _, err := os.Stat(filepath.Join(pass.Mod.Root, name)); err != nil {
			pass.Reportf(posMap[loc[0]], "comment references %s but no such file exists at the module root", name)
		}
	}
}

type secRef struct {
	anchor string
	at     token.Pos
}

func checkAnchors(pass *kit.Pass, text string, posMap []token.Pos) {
	var refs []secRef
	for _, m := range anchorRe.FindAllStringSubmatchIndex(text, -1) {
		refs = append(refs, secRef{text[m[2]:m[3]], posMap[m[0]]})
	}
	for _, m := range sectionRe.FindAllStringSubmatchIndex(text, -1) {
		at := posMap[m[0]]
		span := text[m[2]:m[3]]
		toks := numOrToRe.FindAllString(span, -1)
		for i, tok := range toks {
			if tok == "to" {
				if i > 0 && i+1 < len(toks) {
					refs = append(refs, expandRange(toks[i-1], toks[i+1], at)...)
				}
				continue
			}
			refs = append(refs, secRef{tok, at})
		}
	}
	if len(refs) == 0 {
		return
	}
	anchors, err := pass.Mod.DesignAnchors()
	for _, r := range refs {
		if err != nil {
			pass.Reportf(r.at, "comment references DESIGN.md section %s but %v", r.anchor, err)
			continue
		}
		if !anchors[r.anchor] {
			pass.Reportf(r.at, "comment references DESIGN.md section %s but DESIGN.md has no such heading", r.anchor)
		}
	}

}

// expandRange fills in the interior anchors of "sections N to M"; the
// endpoints themselves are already collected as plain number tokens.
func expandRange(lo, hi string, at token.Pos) []secRef {
	l, err1 := strconv.Atoi(lo)
	h, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || h-l > 32 {
		return nil
	}
	var out []secRef
	for n := l + 1; n < h; n++ {
		out = append(out, secRef{strconv.Itoa(n), at})
	}
	return out
}
