package mdref_test

import (
	"testing"

	"github.com/informing-observers/informer/internal/analysis/kit"
	"github.com/informing-observers/informer/internal/analysis/mdref"
)

func TestMdRef(t *testing.T) {
	kit.RunTest(t, "testdata", mdref.Analyzer, "a")
}
