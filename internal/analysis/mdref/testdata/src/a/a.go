// Package a exercises mdref. Markdown references resolve against the
// fixture root: OK.md and DESIGN.md exist there, so this doc comment is
// clean.
package a

// The overview lives in OK.md and the design in DESIGN.md section 2.
func ok() {}

// Details were moved to GONE.md some time ago. // want `comment references GONE\.md but no such file`
func badFile() {}

// The incremental path is covered by DESIGN.md section 9 at length. // want `DESIGN\.md section 9 but DESIGN\.md has no such heading`
func badAnchor() {}

// See §2.1 for the split.
func okAnchor() {}

// See §4.2 for the merge. // want `DESIGN\.md section 4\.2 but DESIGN\.md has no such heading`
func badSub() {}

// Sections wrap across comment lines too: the pipeline of DESIGN.md
// sections 1 to 3 ends at the ledger.
func okRange() {}

// The full story spans DESIGN.md sections 2 and 6. // want `DESIGN\.md section 6 but DESIGN\.md has no such heading`
func badPair() {}

func suppressed() {
	//informer:ignore mdref historical reference kept on purpose
	// Suppressed: ANCIENT.md predates the repo.
}
