package informer

// The per-snapshot query cache: every read the facade (and therefore the
// /api/v1 serving layer) answers is keyed by the query's canonical form
// and cached on the immutable assessment snapshot it was computed from, so
// repeated identical reads during one assessment round are map hits and a
// snapshot swap invalidates everything at zero cost — the cache dies with
// its snapshot (DESIGN.md section 8).
//
// Two layers share the work. The *spine* cache holds the fully ranked
// candidate list of a query's scope + predicates + sort — the
// filter-placement idea: one standing filter is evaluated once per
// assessment round, and every consumer window fans out of that single
// evaluation. The *window* cache holds materialized pages keyed by the
// full query including the pagination window and projection. Any window —
// an offset page, a cursor page, a watch diff — is an O(window) slice of
// the shared spine, which is also what folds the deprecated offset shim
// onto the keyset path: page N of an offset walk no longer re-selects the
// O(N·limit) prefix, it slices the same spine every other page uses.
//
// Cached results are shared between callers (including concurrent HTTP
// handlers): treat QueryResult.Items as read-only, like the indicator map
// of SentimentByCategory.

import (
	"sync"

	"github.com/informing-observers/informer/internal/quality"
)

// maxCachedSpines and maxCachedWindows cap the per-snapshot cache so a
// hostile query stream cannot grow a snapshot without bound; past the cap,
// queries execute uncached (same results, no retention).
const (
	maxCachedSpines  = 256
	maxCachedWindows = 2048
)

// spineEntry and windowEntry are once-per-round computations, scan.go
// style: the map registers intent under the lock, the sync.Once computes
// outside it, so identical concurrent reads collapse into one execution.
type spineEntry struct {
	once sync.Once
	sp   *quality.Spine
	err  error
}

type windowEntry struct {
	once sync.Once
	res  *QueryResult
	err  error
}

// queryable is the assessor surface the cache executes against; both
// SourceAssessor and ContributorAssessor satisfy it.
type queryable[R any] interface {
	Query([]*R, Query) (*QueryResult, error)
	Spine([]*R, Query) (*quality.Spine, error)
	Window([]*R, *quality.Spine, Query) (*QueryResult, error)
	RepairSpine([]*R, *quality.Spine, Query) (*quality.Spine, bool)
}

// querySources answers a source query from the snapshot's cache.
func (st *assessState) querySources(q Query) (*QueryResult, error) {
	return cachedQuery[quality.SourceRecord](st, 's', st.env.Sources, st.env.SourceRecords, q)
}

// queryContributors answers a contributor query from the snapshot's cache.
func (st *assessState) queryContributors(q Query) (*QueryResult, error) {
	return cachedQuery[quality.ContributorRecord](st, 'c', st.env.Contributors, st.env.ContributorRecords, q)
}

// cachedQuery answers q for one record population: window-cache hit, else
// a slice of the (possibly cached) spine, else — past the caps — a plain
// uncached execution. Every path returns results bit-identical to
// a.Query(records, q); the equivalence is pinned by the randomized
// property tests in internal/quality/query_test.go.
//
//informer:mutates memoised per-round query cache guarded by queryMu and entry onces
func cachedQuery[R any](st *assessState, kind byte, a queryable[R], records []*R, q Query) (*QueryResult, error) {
	wKey := string(kind) + "\x00" + q.CanonicalKey()
	st.queryMu.Lock()
	if st.windows == nil {
		st.windows = make(map[string]*windowEntry)
		st.spines = make(map[string]*spineEntry)
	}
	we, ok := st.windows[wKey]
	if !ok {
		if len(st.windows) >= maxCachedWindows {
			// Window cap reached: stop retaining pages, but keep slicing
			// the (usually cached) spine so deep offset pages never fall
			// back to per-page prefix re-selection.
			st.queryMu.Unlock()
			sp, err := cachedSpine(st, kind, a, records, q)
			if err != nil {
				return nil, err
			}
			return a.Window(records, sp, q)
		}
		we = &windowEntry{}
		st.windows[wKey] = we
	}
	st.queryMu.Unlock()
	we.once.Do(func() {
		sp, err := cachedSpine(st, kind, a, records, q)
		if err != nil {
			we.err = err
			return
		}
		we.res, we.err = a.Window(records, sp, q)
	})
	if we.res == nil && we.err == nil {
		// The entry's once panicked mid-computation (and the caller
		// recovered, e.g. net/http): the once is spent but holds nothing.
		// Serve this caller uncached rather than handing out (nil, nil).
		return a.Query(records, q)
	}
	return we.res, we.err
}

// cachedSpine returns the ranked spine shared by every window of q's
// scope + predicates + sort, building it on first demand this round.
//
//informer:mutates memoised per-round spine cache guarded by queryMu and entry onces
func cachedSpine[R any](st *assessState, kind byte, a queryable[R], records []*R, q Query) (*quality.Spine, error) {
	sq := q.Windowless()
	sKey := string(kind) + "\x00" + sq.CanonicalKey()
	st.queryMu.Lock()
	se, ok := st.spines[sKey]
	if !ok {
		if len(st.spines) >= maxCachedSpines {
			st.queryMu.Unlock()
			return buildSpine(st, sKey, a, records, sq)
		}
		se = &spineEntry{}
		st.spines[sKey] = se
	}
	st.queryMu.Unlock()
	se.once.Do(func() {
		se.sp, se.err = buildSpine(st, sKey, a, records, sq)
		if se.err == nil && se.sp != nil {
			// Record the completed spine under the lock so the next
			// Advance can hand it to its snapshot as repair substrate;
			// doneSpines never observes a half-built entry this way.
			st.queryMu.Lock()
			if st.spinesDone == nil {
				st.spinesDone = make(map[string]*quality.Spine)
			}
			st.spinesDone[sKey] = se.sp
			st.queryMu.Unlock()
		}
	})
	if se.sp == nil && se.err == nil {
		// Spent-but-empty once (a recovered panic): compute uncached.
		return buildSpine(st, sKey, a, records, sq)
	}
	return se.sp, se.err
}

// buildSpine computes a ranked spine, preferring the carry/repair path:
// if the previous assessment round completed a spine for the same
// standing filter, the engine repairs only the rows its last update
// dirtied (per shard, under a sharded engine) instead of re-scanning the
// corpus. The repaired spine is pinned bit-identical to a fresh scan by
// TestRepairedSpineEquivalence; any ineligibility — epoch moved,
// benchmarks shifted, shard layout changed — falls through to a scan.
func buildSpine[R any](st *assessState, sKey string, a queryable[R], records []*R, sq Query) (*quality.Spine, error) {
	if prev, ok := st.prevSpines[sKey]; ok {
		if sp, ok := a.RepairSpine(records, prev, sq); ok {
			return sp, nil
		}
	}
	return a.Spine(records, sq)
}

// doneSpines snapshots the spines completed during this round, for the
// next snapshot's prevSpines. It copies under queryMu: late readers of a
// superseded snapshot may still be finishing spine computations.
func (st *assessState) doneSpines() map[string]*quality.Spine {
	st.queryMu.Lock()
	defer st.queryMu.Unlock()
	if len(st.spinesDone) == 0 {
		return nil
	}
	out := make(map[string]*quality.Spine, len(st.spinesDone))
	for k, sp := range st.spinesDone {
		out[k] = sp
	}
	return out
}
