// Package informer is the public face of the Informing Observers library:
// quality-driven filtering and composition of Web 2.0 sources, after
// Barbagallo, Cappiello, Francalanci, Matera and Picozzi (EDBT 2012).
//
// The library assesses Web 2.0 sources and contributors along the paper's
// quality model (data-quality dimensions crossed with Web 2.0 attributes,
// Tables 1 and 2), detects influencers with spam-resistant combined
// scoring (Section 3.2), and lets callers compose quality-aware analysis
// dashboards out of data services, filters, analyzers and synchronised
// viewers (Sections 5 and 6).
//
// A Corpus bundles a (synthetic, deterministic) Web 2.0 world with its
// analytics panel and pre-computed quality assessments. Reads go through
// the composable Query model — scope, quality predicates, ranking axis,
// top-k, pagination — executed below the ranking against the cached
// measure matrix (DESIGN.md section 7):
//
//	c := informer.New(informer.Config{Seed: 42, NumSources: 200})
//	res, _ := c.QuerySources(informer.NewQuery().MinScore(0.6).TopK(10).Build())
//	for _, a := range res.Items {
//	    fmt.Println(a.Name, a.Score)
//	}
//
// The same Query is served remotely by the versioned JSON API (see
// APIHandler): GET /api/v1/sources?min_score=0.6&k=10 returns the same
// assessments byte for byte.
//
// Mashups are declared in JSON and executed with live viewer
// synchronisation:
//
//	rt, _ := c.NewMashup([]byte(compositionJSON))
//	dash, _ := rt.Run()
//	fmt.Println(dash.Render())
//
// The monitoring scenario advances the corpus timeline incrementally:
// Advance re-assesses only what a tick changed and swaps the assessment
// snapshot atomically, so readers keep being served while the world ticks
// (see DESIGN.md section 6):
//
//	before := c.SourceReport()
//	c.Advance(7, seed)
//	shift := informer.RankShift(before, c.SourceReport())
//
// The types below are aliases of the implementation packages so that
// downstream code can name every value the facade returns.
//
//informer:deterministic
package informer

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/apiserve"
	"github.com/informing-observers/informer/internal/buzz"
	"github.com/informing-observers/informer/internal/correlate"
	"github.com/informing-observers/informer/internal/crawler"
	"github.com/informing-observers/informer/internal/deliver"
	"github.com/informing-observers/informer/internal/mashup"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/search"
	"github.com/informing-observers/informer/internal/sentiment"
	"github.com/informing-observers/informer/internal/services"
	"github.com/informing-observers/informer/internal/social"
	"github.com/informing-observers/informer/internal/subscribe"
	"github.com/informing-observers/informer/internal/webgen"
	"github.com/informing-observers/informer/internal/webserve"
)

// Re-exported model types. Aliases keep the public API nameable by
// importers while the implementation lives in internal packages.
type (
	// DomainOfInterest scopes domain-dependent quality measures.
	DomainOfInterest = quality.DomainOfInterest
	// Dimension is a data-quality dimension (rows of Tables 1 and 2);
	// Attribute is a Web 2.0 attribute (the columns). Queries filter and
	// sort along both axes.
	Dimension = quality.Dimension
	Attribute = quality.Attribute
	// Assessment is a full quality evaluation of a source or contributor.
	Assessment = quality.Assessment
	// SourceRecord / ContributorRecord are the raw observation records.
	SourceRecord      = quality.SourceRecord
	ContributorRecord = quality.ContributorRecord
	// Influencer is a detected opinion leader.
	Influencer = quality.Influencer
	// InfluencerOptions configures influencer detection.
	InfluencerOptions = quality.InfluencerOptions
	// World is the synthetic Web 2.0 corpus.
	World = webgen.World
	// WorldConfig configures corpus generation.
	WorldConfig = webgen.Config
	// Delta describes what one Advance tick changed (see LastDelta).
	Delta = webgen.Delta
	// SearchResult is one baseline search hit.
	SearchResult = search.Result
	// Dashboard is an executed mashup's rendered state.
	Dashboard = mashup.Dashboard
	// MashupRuntime is an instantiated, executable composition.
	MashupRuntime = mashup.Runtime
	// MashupEvent is a viewer event (selection) for Emit.
	MashupEvent = mashup.Item
	// SentimentIndicator is a per-category sentiment summary.
	SentimentIndicator = sentiment.Indicator
	// Story is one cross-source near-duplicate cluster; StorySet is the
	// immutable per-round set of them (see Corpus.Stories). StoryQuery,
	// StoryCursor and StoryPage page through a set in freshness order.
	Story       = correlate.Story
	StorySet    = correlate.StorySet
	StoryQuery  = correlate.StoryQuery
	StoryCursor = correlate.StoryCursor
	StoryPage   = correlate.StoryPage
	// MicroblogDataset is the annotated account dataset of Section 4.2.
	MicroblogDataset = social.Dataset
	// MicroblogConfig configures microblog generation.
	MicroblogConfig = social.Config
)

// Influencer strategies (Section 3.2).
const (
	ByActivity = quality.ByActivity
	ByRelative = quality.ByRelative
	Combined   = quality.Combined
)

// ParseDimension and ParseAttribute resolve query axes by name ("time",
// "relevance", ...) — the binding used by /api/v1 query strings and CLI
// flags.
var (
	ParseDimension = quality.ParseDimension
	ParseAttribute = quality.ParseAttribute
)

// Quality dimensions (Batini et al.'s classification revisited for
// user-generated content) — the rows of Tables 1 and 2.
const (
	Accuracy         = quality.Accuracy
	Completeness     = quality.Completeness
	Time             = quality.Time
	Interpretability = quality.Interpretability
	Authority        = quality.Authority
	Dependability    = quality.Dependability
)

// Web 2.0 attributes — the columns of Tables 1 and 2 (Traffic applies to
// sources, Activity to contributors).
const (
	Relevance  = quality.Relevance
	Breadth    = quality.Breadth
	Traffic    = quality.Traffic
	Activity   = quality.Activity
	Liveliness = quality.Liveliness
)

// Config configures a Corpus.
type Config struct {
	// Seed drives every generator deterministically (default 1).
	Seed int64
	// NumSources and NumUsers size the world (defaults 100 / 200).
	NumSources, NumUsers int
	// CommentText generates full comment bodies (needed for sentiment
	// analysis and crawling demos). It also activates the correlation
	// engine: near-duplicate detection, story clustering (Stories) and the
	// src.originality measure.
	CommentText bool
	// SyndicationRate injects syndicated near-duplicate copies into the
	// generated comment stream (webgen.Config.SyndicationRate) — ground
	// truth for the correlation engine. Needs CommentText; 0 disables.
	SyndicationRate float64
	// SpamRate injects spam/bot users for robustness experiments.
	SpamRate float64
	// DI scopes the analysis; empty means all of the world's categories.
	DI DomainOfInterest
	// Shards partitions the corpus' quality engines into that many
	// contiguous record-range shards: queries run as scatter-gather plans
	// with routing-based shard pruning, and an Advance tick re-evaluates
	// only the shards its delta touched. Results — assessments, rankings,
	// query windows, cursors — are bit-identical for any value (benchmarks
	// stay corpus-global; see DESIGN.md section 11). 0 or 1 keeps the
	// single-matrix engine, today's default.
	Shards int
}

// Corpus is an assessed Web 2.0 world: the paper's analysis environment.
//
// A Corpus is safe for concurrent readers during advancement: every
// reading method serves from an immutable assessment snapshot held behind
// an atomic pointer, and Advance builds the next snapshot copy-on-write
// before swapping it in. Readers therefore always observe one fully
// consistent assessment round — never a half-ticked world.
type Corpus struct {
	DI DomainOfInterest

	// seed is the observation seed fixed at construction: the analytics
	// panel derives from seed+1 and the search baseline from seed+2, on
	// every assessment round (re-observing does not redraw panel noise).
	seed int64

	state     atomic.Pointer[assessState]
	advanceMu sync.Mutex // serialises writers (Advance, Ingest, DrainTick)

	// ingestState buffers per-source ingestion ticks (Ingest) between
	// assessment drains (DrainTick); nil until the first Ingest. Guarded
	// by advanceMu; see ingestion.go.
	ingestState *ingestion

	// correlator is the correlation engine's writer-owned dedup index
	// (internal/correlate), active only when the world carries comment
	// text; nil otherwise. Mutated exclusively under advanceMu — readers
	// see its output through the immutable StorySet and the per-record
	// counters published on each snapshot, never the index itself.
	correlator *correlate.Index

	// subs is the corpus' standing-query subscription registry
	// (internal/subscribe): Advance publishes every new snapshot into it,
	// each distinct standing query is evaluated once per tick, and the
	// window delta fans out to every subscriber — in-process consumers
	// (Subscribe) and the HTTP transports (watch long-polls, SSE streams)
	// alike. It also carries the rotating change-notification channel
	// behind Changed.
	subs *subscribe.Registry

	// sinks is the lazily built push-delivery manager (internal/deliver)
	// attaching remote webhook sinks to subs; see Sinks.
	sinksOnce sync.Once
	sinks     *deliver.Manager
}

// assessState is one immutable assessment snapshot: the world as of a
// tick, its panel join, the assessed environment and the lazily built
// per-snapshot caches. States are never mutated after publication — the
// lazy caches are internally synchronised — so any number of readers can
// hold one while a writer prepares the next.
//
//informer:snapshot
type assessState struct {
	world *World
	panel *analytics.Panel
	env   *services.Env
	seed  int64
	// version numbers assessment rounds monotonically (construction = 1,
	// +1 per effective Advance). It is the snapshot token the /api/v1
	// serving layer pins paginated walks to.
	version int64
	// delta is the tick that produced this snapshot (nil for the
	// construction snapshot).
	delta *webgen.Delta

	// stories is the round's story-cluster snapshot, materialized by the
	// correlation engine at publish time; nil when the corpus carries no
	// comment text.
	stories *correlate.StorySet

	// infMu guards the per-round influencer roster cache: full rosters
	// (TopK unbounded) keyed by canonical options, computed once per
	// round and per key. prevInf carries the previous round's completed
	// rosters; when infRepairOK holds (epoch still, contributor
	// benchmarks bitwise unchanged) a roster is repaired from its
	// predecessor over infDirty instead of being rebuilt. Both are
	// written only before the snapshot publishes.
	infMu       sync.Mutex
	infRosters  map[string][]Influencer
	prevInf     map[string][]Influencer
	infRepairOK bool
	infDirty    []int

	engineOnce sync.Once
	engine     *search.Engine

	serverOnce sync.Once
	server     http.Handler

	panelHandlerOnce sync.Once
	panelHandler     http.Handler

	// scan caches the corpus-wide comment pass shared by
	// SentimentByCategory and TrendingTerms (see scan.go). scanBase and
	// scanStale carry the previous snapshot's pass forward so an advanced
	// corpus re-scans only the sources the tick touched.
	scanMu    sync.Mutex
	scan      *commentScan
	scanBase  *commentScan
	scanStale map[int]bool // source row -> stale in scanBase

	// queryMu guards the per-snapshot query result cache (querycache.go):
	// ranked spines per standing filter and materialized windows per full
	// canonical query. Both die with the snapshot, so an Advance
	// invalidates every cached read atomically and for free.
	queryMu sync.Mutex
	spines  map[string]*spineEntry
	windows map[string]*windowEntry
	// spinesDone records spines whose computation completed this round
	// (recorded under queryMu after each entry's once resolves, so Advance
	// never races a half-built entry). Advance copies it into the next
	// snapshot's prevSpines.
	spinesDone map[string]*quality.Spine
	// prevSpines carries the previous round's completed spines, keyed by
	// windowless canonical query: the substrate of the spine carry/repair
	// path (quality.RepairSpine) that turns a sparse tick's standing-query
	// re-evaluation into per-shard repairs instead of corpus re-scans.
	// Written only before the snapshot publishes; read-only afterwards.
	prevSpines map[string]*quality.Spine
}

// searchEngine lazily builds the snapshot's search baseline.
//
//informer:mutates memoised lazy init guarded by engineOnce
func (st *assessState) searchEngine() *search.Engine {
	st.engineOnce.Do(func() {
		st.engine = search.NewEngine(st.world, st.panel, search.Config{Seed: st.seed + 2})
	})
	return st.engine
}

// webServer lazily builds the snapshot's crawlable HTTP surface.
//
//informer:mutates memoised lazy init guarded by serverOnce
func (st *assessState) webServer() http.Handler {
	st.serverOnce.Do(func() {
		st.server = webserve.New(st.world)
	})
	return st.server
}

// New generates and assesses a corpus.
func New(cfg Config) *Corpus {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	world := webgen.Generate(webgen.Config{
		Seed:            cfg.Seed,
		NumSources:      cfg.NumSources,
		NumUsers:        cfg.NumUsers,
		CommentText:     cfg.CommentText,
		SpamRate:        cfg.SpamRate,
		SyndicationRate: cfg.SyndicationRate,
	})
	return FromWorldSharded(world, cfg.DI, cfg.Seed, cfg.Shards)
}

// FromWorld assesses an existing world (generated with custom options)
// with the single-matrix engine — FromWorldSharded with one shard.
func FromWorld(world *World, di DomainOfInterest, seed int64) *Corpus {
	return FromWorldSharded(world, di, seed, 1)
}

// FromWorldSharded assesses an existing world over the given shard count
// (see Config.Shards; values below 2 select the single-matrix engine).
func FromWorldSharded(world *World, di DomainOfInterest, seed int64, shards int) *Corpus {
	if len(di.Categories) == 0 {
		di.Categories = world.Categories
	}
	panel := analytics.Build(world, seed+1)
	var opts *quality.AssessorOptions
	if shards > 1 {
		opts = &quality.AssessorOptions{Shards: shards}
	}
	// The correlation engine runs only over corpora with comment text:
	// the index is built once here and repaired through every publish.
	// Its counters join the source records before the assessor derives
	// benchmarks, so src.originality is a first-class measure column.
	var (
		ix      *correlate.Index
		stories *correlate.StorySet
		counts  services.CorrelationCounts
	)
	if world.Config.CommentText {
		ix = correlate.NewIndex()
		stories = ix.Build(world)
		counts = ix.Counts
	}
	env := services.NewEnvCorrelated(world, panel, di, opts, counts)
	c := &Corpus{DI: di, seed: seed, correlator: ix}
	c.state.Store(&assessState{world: world, panel: panel, env: env, seed: seed, version: 1, stories: stories})
	c.subs = subscribe.New(func() subscribe.Snapshot { return apiSnapshot{c.state.Load()} }, subscribe.Options{})
	return c
}

// ShardCount reports how many shards the corpus' quality engines partition
// the record populations into (1 = the single-matrix engine).
func (c *Corpus) ShardCount() int { return c.state.Load().env.Sources.ShardCount() }

// SnapshotVersion returns the current assessment round's monotonic version
// — the snapshot token carried by the /api/v1 envelopes and ETags. It
// increments on every effective Advance.
func (c *Corpus) SnapshotVersion() int64 { return c.state.Load().version }

// World returns the current world snapshot. After Advance the previous
// snapshot stays valid — worlds are copy-on-write — so holders of an older
// pointer are never disturbed.
func (c *Corpus) World() *World { return c.state.Load().world }

// SourceRecords exposes the raw source observation records.
func (c *Corpus) SourceRecords() []*SourceRecord { return c.state.Load().env.SourceRecords }

// ContributorRecords exposes the raw contributor records.
func (c *Corpus) ContributorRecords() []*ContributorRecord {
	return c.state.Load().env.ContributorRecords
}

// AssessSource evaluates all Table 1 measures for one source.
func (c *Corpus) AssessSource(id int) (*Assessment, bool) {
	st := c.state.Load()
	if id < 0 || id >= len(st.env.SourceRecords) {
		return nil, false
	}
	return st.env.Sources.Assess(st.env.SourceRecords[id]), true
}

// QuerySources executes a composable quality query over the current
// assessment snapshot: scope and predicates are pushed below the ranking,
// and a top-k bound selects winners through a bounded heap over the cached
// measure matrix instead of materializing and sorting every assessment.
// Build queries with NewQuery; the zero Query ranks everything.
//
// Results are cached on the snapshot per canonical query (querycache.go):
// repeated identical reads within one assessment round are map hits, every
// pagination window of one query — offset pages and cursor pages alike —
// slices a shared ranked spine, and Advance invalidates the whole cache by
// swapping the snapshot. Treat the returned result as read-only; identical
// queries may share it.
func (c *Corpus) QuerySources(q Query) (*QueryResult, error) {
	return c.state.Load().querySources(q)
}

// QueryContributors executes a quality query over the contributors; in
// addition to the source predicates it understands SpamResistant. Results
// are cached per snapshot exactly like QuerySources.
func (c *Corpus) QueryContributors(q Query) (*QueryResult, error) {
	return c.state.Load().queryContributors(q)
}

// RankSources assesses and ranks every source, best first.
//
// Deprecated: RankSources materializes the full assessment of every source
// on every call. Use QuerySources, which filters and bounds the selection
// below the ranking (this shim is QuerySources with the zero Query).
func (c *Corpus) RankSources() []*Assessment {
	res, _ := c.QuerySources(Query{}) // the zero query cannot be invalid
	return res.Items
}

// AssessContributor evaluates all Table 2 measures for one user.
func (c *Corpus) AssessContributor(id int) (*Assessment, bool) {
	st := c.state.Load()
	if id < 0 || id >= len(st.env.ContributorRecords) {
		return nil, false
	}
	return st.env.Contributors.Assess(st.env.ContributorRecords[id]), true
}

// RankContributors assesses and ranks every contributor, best first.
//
// Deprecated: use QueryContributors (this shim is QueryContributors with
// the zero Query).
func (c *Corpus) RankContributors() []*Assessment {
	res, _ := c.QueryContributors(Query{}) // the zero query cannot be invalid
	return res.Items
}

// Influencers detects opinion leaders (Section 3.2).
func (c *Corpus) Influencers(opts InfluencerOptions) []Influencer {
	return c.state.Load().influencers(opts)
}

// influencers answers an influencer query from the round's roster cache.
// The full roster (TopK unbounded) per canonical option key is computed
// once per round; when the repair licence holds it is derived from the
// previous round's roster by re-scoring only the tick's dirty
// contributors (quality.RepairInfluencers), otherwise built fresh. TopK
// truncation happens on a per-call copy so cached rosters stay shared.
//
//informer:mutates memoised roster cache guarded by infMu
func (st *assessState) influencers(opts InfluencerOptions) []Influencer {
	minInteractions := opts.MinInteractions
	if minInteractions <= 0 {
		minInteractions = 1
	}
	full := InfluencerOptions{Strategy: opts.Strategy, MinInteractions: minInteractions}
	key := full.Strategy.String() + "|" + strconv.Itoa(minInteractions)

	st.infMu.Lock()
	roster, ok := st.infRosters[key]
	if !ok {
		if prev, has := st.prevInf[key]; has && st.infRepairOK {
			roster = quality.RepairInfluencers(prev, st.env.Contributors, st.env.ContributorRecords, st.infDirty, full)
		} else {
			roster = quality.Influencers(st.env.Contributors, st.env.ContributorRecords, full)
		}
		if st.infRosters == nil {
			st.infRosters = make(map[string][]Influencer)
		}
		st.infRosters[key] = roster
	}
	st.infMu.Unlock()

	if opts.TopK > 0 && len(roster) > opts.TopK {
		roster = roster[:opts.TopK]
	}
	out := make([]Influencer, len(roster))
	copy(out, roster)
	return out
}

// doneInfluencers snapshots the rosters completed during this round, for
// the next snapshot's prevInf. It copies under infMu: late readers of a
// superseded snapshot may still be filling the cache.
func (st *assessState) doneInfluencers() map[string][]Influencer {
	st.infMu.Lock()
	defer st.infMu.Unlock()
	if len(st.infRosters) == 0 {
		return nil
	}
	out := make(map[string][]Influencer, len(st.infRosters))
	for k, r := range st.infRosters {
		out[k] = r
	}
	return out
}

// Stories returns the current round's story-cluster snapshot: groups of
// near-duplicate discussions syndicated across sources, maintained
// incrementally by the correlation engine (DESIGN.md section 14). Nil
// when the corpus carries no comment text (Config.CommentText false).
func (c *Corpus) Stories() *StorySet {
	return c.state.Load().stories
}

// Search queries the built-in search-engine baseline (the paper's Google
// stand-in) over the corpus.
func (c *Corpus) Search(query string, k int) []SearchResult {
	return c.state.Load().searchEngine().Search(query, k)
}

// SentimentByCategory scores every comment in the corpus and aggregates
// per-category indicators, weighting each source by its quality score
// (Section 6). Requires a corpus generated with CommentText. The
// underlying corpus pass runs once per assessment round, scoring sources
// in parallel, and is shared with TrendingTerms (see scan.go); the
// aggregated indicator map itself is also computed once per round and
// shared between callers (including /api/v1/sentiment), so treat the
// returned map as read-only. After Advance, only sources the tick touched
// are re-scanned.
func (c *Corpus) SentimentByCategory() map[string]SentimentIndicator {
	return c.state.Load().sentimentByCategory()
}

// NewMashup parses a JSON composition and instantiates it against this
// corpus' component registry (builtins plus the quality/sentiment/data
// services of Section 5).
func (c *Corpus) NewMashup(compositionJSON []byte) (*MashupRuntime, error) {
	comp, err := mashup.ParseComposition(compositionJSON)
	if err != nil {
		return nil, err
	}
	return mashup.NewRuntime(comp, services.NewRegistry(c.state.Load().env))
}

// RunMashup parses, instantiates and runs a composition in one call.
func (c *Corpus) RunMashup(compositionJSON []byte) (*Dashboard, error) {
	rt, err := c.NewMashup(compositionJSON)
	if err != nil {
		return nil, err
	}
	return rt.Run()
}

// EmitSelect fires a selection event on a viewer, returning the refreshed
// dashboard (Figure 1's synchronised viewing).
func EmitSelect(rt *MashupRuntime, viewerID string, payload MashupEvent) (*Dashboard, error) {
	return rt.Emit(mashup.Event{Source: viewerID, Name: "select", Payload: payload})
}

// Handler serves the corpus over HTTP (per-source pages, discussion pages
// with data islands, RSS/Atom feeds, sitemap) so it can be crawled like
// the live Web. The handler always serves the corpus' current snapshot:
// requests racing an Advance see either the whole old world or the whole
// new one, so a crawler's conditional re-fetch (ETags) works across ticks.
func (c *Corpus) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.state.Load().webServer().ServeHTTP(w, r)
	})
}

// PanelHandler serves the analytics panel (the Alexa substitute) as a
// JSON API, always reading the current snapshot's panel.
//
//informer:mutates memoised lazy init guarded by panelHandlerOnce
func (c *Corpus) PanelHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := c.state.Load()
		st.panelHandlerOnce.Do(func() { st.panelHandler = st.panel.Handler() })
		st.panelHandler.ServeHTTP(w, r)
	})
}

// APIHandler serves the corpus' quality assessments as the versioned JSON
// HTTP API of DESIGN.md sections 7 to 9 — /api/v1/sources,
// /api/v1/contributors, /api/v1/influencers, /api/v1/sentiment,
// /api/v1/trending, /api/v1/search, the /api/v1/watch long-poll and the
// /api/v1/stream SSE feed — with query-string-bound Query execution,
// pagination envelopes, snapshot-consistent ETags, gzip and tick-derived
// Last-Modified. Every request is answered from one immutable assessment
// snapshot; clients echoing the envelope's snapshot token (?snapshot=N)
// pin a paginated walk to that round even while Advance ticks the corpus
// underneath, so a walk never mixes two assessment rounds. Windowed
// responses carry an opaque next_cursor token (keyset pagination: echo it
// as ?cursor= to resume at single-page cost). Standing-query observers —
// watch long-polls and SSE streams — fan out of the corpus' subscription
// registry: each distinct canonical query is evaluated once per Advance
// tick, shared with in-process Subscribe consumers.
func (c *Corpus) APIHandler() http.Handler {
	return apiserve.New(apiProvider{c})
}

// apiProvider adapts the corpus to apiserve's snapshot source.
type apiProvider struct{ c *Corpus }

func (p apiProvider) Snapshot() apiserve.Snapshot {
	return apiSnapshot{p.c.state.Load()}
}

// Subscriptions implements apiserve.SubscriptionProvider: HTTP watchers
// and streams subscribe into the corpus' own registry — fed synchronously
// by Advance — so remote and in-process observers of one canonical query
// share a single evaluation and delta computation per tick.
func (p apiProvider) Subscriptions() *subscribe.Registry { return p.c.subs }

// Sinks implements apiserve.SinkProvider: the API server mounts the
// /api/v1/sinks management endpoints over the corpus' delivery manager.
func (p apiProvider) Sinks() *deliver.Manager { return p.c.Sinks() }

// apiSnapshot exposes one immutable assessment round to the serving layer.
type apiSnapshot struct{ st *assessState }

func (s apiSnapshot) Version() int64 { return s.st.version }

// ShardCount exposes the engine's shard count to the serving layer, which
// tags cursor tokens with it: a token minted under one sharding fails
// closed (410 Gone) if the corpus is rebuilt with another, instead of
// resuming a walk whose per-shard cost model no longer holds.
func (s apiSnapshot) ShardCount() int { return s.st.env.Sources.ShardCount() }

func (s apiSnapshot) QuerySources(q Query) (*QueryResult, error) {
	return s.st.querySources(q)
}

func (s apiSnapshot) QueryContributors(q Query) (*QueryResult, error) {
	return s.st.queryContributors(q)
}

func (s apiSnapshot) Influencers(opts InfluencerOptions) []Influencer {
	return s.st.influencers(opts)
}

// Stories serves the story-cluster listing, enriching each cluster with
// the member sources' names and quality scores — ranked best-assessed
// first — and the title of the representative discussion. A corpus
// without comment text (no correlation engine) answers an empty result.
func (s apiSnapshot) Stories(q correlate.StoryQuery) *apiserve.StoriesResult {
	pg := s.st.stories.Query(q)
	res := &apiserve.StoriesResult{Items: make([]apiserve.StoryItem, 0, len(pg.Stories)), Total: pg.Total, Next: pg.Next}
	world, scores := s.st.world, s.st.env.SourceScores
	for _, story := range pg.Stories {
		item := apiserve.StoryItem{
			ID:           story.ID,
			Size:         story.Size,
			Latest:       story.Latest,
			SourceID:     story.SourceID,
			DiscussionID: story.DiscussionID,
			Members:      make([]apiserve.StoryMember, 0, len(story.Sources)),
		}
		if src := world.Sources[story.SourceID]; src != nil {
			for _, d := range src.Discussions {
				if d.ID == story.DiscussionID {
					item.Title = d.Title
					break
				}
			}
		}
		for _, sid := range story.Sources {
			item.Members = append(item.Members, apiserve.StoryMember{
				SourceID: sid,
				Name:     world.Sources[sid].Name,
				Score:    scores[sid],
			})
		}
		// Best-assessed member first; the member list arrives sorted by
		// source ID, which stays the deterministic tiebreak.
		sort.SliceStable(item.Members, func(i, j int) bool {
			return item.Members[i].Score > item.Members[j].Score
		})
		res.Items = append(res.Items, item)
	}
	return res
}

func (s apiSnapshot) SentimentByCategory() map[string]SentimentIndicator {
	return s.st.sentimentByCategory()
}

func (s apiSnapshot) TrendingTerms(category string, k int) []BuzzTerm {
	return s.st.trendingTerms(category, k)
}

func (s apiSnapshot) Search(query string, k int) []SearchResult {
	return s.st.searchEngine().Search(query, k)
}

// CrawlOptions configures Crawl.
type CrawlOptions struct {
	// Workers bounds concurrency (default 8); Delay is the politeness
	// pause per request.
	Workers int
	Delay   time.Duration
	// FetchFeeds additionally parses each source's RSS feed.
	FetchFeeds bool
}

// Crawl walks a corpus served at baseURL over real HTTP and returns source
// records joined with this corpus' analytics panel, ready for assessment.
// observedAt/windowDays follow the served world's timeline.
func (c *Corpus) Crawl(ctx context.Context, baseURL string, opts CrawlOptions) ([]*SourceRecord, error) {
	snap, err := crawler.Crawl(ctx, crawler.Config{
		BaseURL:    baseURL,
		Workers:    opts.Workers,
		Delay:      opts.Delay,
		FetchFeeds: opts.FetchFeeds,
	})
	if err != nil {
		return nil, err
	}
	st := c.state.Load()
	return quality.SourceRecordsFromSnapshot(snap, st.panel, st.world.Config.End, st.world.Days()), nil
}

// QueryRecords assesses externally obtained source records (e.g. from
// Crawl) under an explicit DomainOfInterest and executes q over them.
//
// Benchmark-derivation semantics: each call builds a fresh assessor whose
// normalisation benchmarks are the winsorised corpus quantiles of the
// records themselves (AssessorOptions defaults: the 0.10/0.90 quantiles
// play the paper's "well-known, highly-ranked sources" role). The records
// are both the assessed population and the benchmark reference — nothing
// is inherited from any Corpus, so scores are comparable within one call's
// record set but not across calls with different record sets. Callers
// needing corpus-anchored benchmarks should assess through a Corpus
// instead (AssessSource / QuerySources).
func QueryRecords(records []*SourceRecord, di DomainOfInterest, q Query) (*QueryResult, error) {
	return quality.NewSourceAssessor(records, di, nil).Query(records, q)
}

// AssessRecords ranks externally obtained records (e.g. from Crawl) with
// benchmarks derived from those same records — see QueryRecords for the
// exact derivation semantics. The corpus contributes only its DI; the
// panel-backed benchmarks of the corpus' own assessor are NOT reused.
//
// Deprecated: use QueryRecords, which makes the DI explicit and composes
// with the full Query model.
func (c *Corpus) AssessRecords(records []*SourceRecord) []*Assessment {
	res, _ := QueryRecords(records, c.DI, Query{}) // the zero query cannot be invalid
	return res.Items
}

// GenerateMicroblog builds the annotated microblog dataset of Section 4.2
// (813 accounts by default) and its contributor records.
func GenerateMicroblog(cfg MicroblogConfig) (*MicroblogDataset, []*ContributorRecord) {
	ds := social.Generate(cfg)
	obs := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	return ds, quality.ContributorRecordsFromSocial(ds, obs)
}

// AssessMicroblog ranks microblog contributors with Table 2 measures.
func AssessMicroblog(records []*ContributorRecord) []*Assessment {
	return quality.NewContributorAssessor(records, DomainOfInterest{}, nil).Rank(records)
}

// Advance extends the corpus timeline by the given number of days,
// generating fresh activity (the monitoring scenario: content keeps
// arriving between assessment rounds), and re-assesses incrementally:
// webgen.Advance reports a Delta of the sources and contributors whose
// content changed, records and measure matrices are repaired for exactly
// that delta (plus the time-sensitive measures, which move with the
// observation instant for everyone), and the comment-scan caches are
// invalidated per source instead of wholesale. The resulting numbers are
// bit-identical to a full FromWorld rebuild over the advanced world with
// the corpus' construction seed.
//
// seed drives only the freshly generated activity; the observation side
// (panel noise, search baseline) keeps the corpus' construction seed, so
// re-assessment never redraws panel noise for sources that did not change.
//
// Advance swaps the corpus' assessment snapshot atomically and returns the
// receiver: concurrent readers (RankSources, SentimentByCategory, Handler,
// ...) keep serving the previous snapshot until the swap and are never
// disturbed — the previous world and its assessments stay valid and
// immutable. Writers are serialised internally. A tick that changes
// nothing (days <= 0) is a no-op returning the receiver unchanged.
//
// When per-source ingestion (Ingest) has buffered activity since the last
// drain, the global tick departs from the ingestion frontier and the
// pending span folds into this tick's round, so one coherent assessment
// publishes — the pending content is never abandoned or double-applied.
func (c *Corpus) Advance(days int, seed int64) *Corpus {
	c.advanceMu.Lock()
	defer c.advanceMu.Unlock()
	cur := c.state.Load()
	from := c.ingestFrontier(cur)
	world, delta := webgen.Advance(from, days, seed)
	if world == from {
		// Zero-delta tick: publish any pending ingestion as-is, else keep
		// the snapshot, pointer-identical.
		c.drainLocked(cur)
		return c
	}
	if c.ingestState != nil && !c.ingestState.acc.Empty() {
		if err := c.ingestState.acc.Add(from, world, delta); err != nil {
			panic("informer: ingestion frontier moved under the writer lock: " + err.Error())
		}
		c.drainLocked(cur)
		return c
	}
	c.publishAdvance(cur, world, delta)
	return c
}

// AdvanceSameDay generates fresh comment activity without moving the
// corpus timeline (webgen.AdvanceSameDay): discussions collect new
// comments, no epoch moves, and re-assessment repairs only the touched
// rows — the sparse-churn tick under which standing-query spines are
// carried forward per shard and repaired instead of re-scanned.
// onlySources, when non-nil, restricts the churn to those source IDs
// (nil = everywhere); an empty non-nil slice produces a content-free tick
// that still publishes a new assessment round. Deterministic per seed;
// swaps the snapshot atomically exactly like Advance, and like Advance it
// folds any pending per-source ingestion (Ingest) into its round.
func (c *Corpus) AdvanceSameDay(seed int64, onlySources []int) *Corpus {
	c.advanceMu.Lock()
	defer c.advanceMu.Unlock()
	cur := c.state.Load()
	from := c.ingestFrontier(cur)
	world, delta := webgen.AdvanceSameDay(from, seed, onlySources)
	if c.ingestState != nil && !c.ingestState.acc.Empty() {
		if err := c.ingestState.acc.Add(from, world, delta); err != nil {
			panic("informer: ingestion frontier moved under the writer lock: " + err.Error())
		}
		c.drainLocked(cur)
		return c
	}
	c.publishAdvance(cur, world, delta)
	return c
}

// publishAdvance derives the next assessment snapshot from a ticked world,
// carries the current round's completed spines forward for repair, swaps
// the snapshot in and fans the round out to the subscription registry.
//
//informer:mutates fills the successor snapshot before the atomic swap
func (c *Corpus) publishAdvance(cur *assessState, world *World, delta *webgen.Delta) {
	panel := cur.panel.Refresh(world)
	var stories *correlate.StorySet
	if c.correlator != nil {
		// Repair the dedup index for exactly the delta's new comments
		// BEFORE the environment advances: env.Advance re-reads the
		// counters for the tick's dirty sources (the only ones whose
		// counters can have moved).
		stories = c.correlator.Fold(world, delta)
	}
	env := cur.env.Advance(world, panel, delta)
	next := &assessState{world: world, panel: panel, env: env, seed: c.seed, version: cur.version + 1, delta: delta, stories: stories}
	next.inheritScan(cur, delta)
	next.prevSpines = cur.doneSpines()
	next.prevInf = cur.doneInfluencers()
	next.infRepairOK = !delta.EpochMoved() && env.Contributors.BenchmarksEqual(cur.env.Contributors)
	next.infDirty = delta.DirtyContributorIDs()
	c.state.Store(next)
	// Publish the round to the subscription registry: every distinct
	// standing query is evaluated once against the new snapshot (off its
	// per-round query cache) and the window delta fans out to all of the
	// query's subscribers before Advance returns.
	c.subs.Publish(apiSnapshot{next})
}

// Subscription is a standing-query subscription: the baseline window at
// the attach round plus a buffered stream of per-tick window deltas; see
// Corpus.Subscribe.
type Subscription = subscribe.Subscription

// SubscriptionEvent is one tick's delta on a subscription: the rank
// movement of the standing window between the Since and Snapshot rounds.
type SubscriptionEvent = subscribe.Event

// ErrSlowConsumer is reported by Subscription.Err after a subscriber
// overflowed its event buffer and was dropped: it must re-sync from a
// full read of the current round (the in-process equivalent of the HTTP
// transports' 410 Gone).
var ErrSlowConsumer = subscribe.ErrSlowConsumer

// Subscribe attaches a standing-query observer to the corpus: the
// returned subscription carries the query's ranked window at the current
// assessment round (Window, Since) and, from then on, one event per
// Advance tick with the rows that entered, left or moved (empty when the
// window held — the since-token still advances). Subscribers of the same
// canonical query share one evaluation and one delta computation per tick
// however many they are; the /api/v1/watch and /api/v1/stream transports
// fan out of the same registry. A subscriber that stops draining its
// buffer is dropped with ErrSlowConsumer and re-syncs from a fresh
// QuerySources read. Close the subscription when done.
//
// The query binds like QuerySources but must not carry a pagination
// position (Offset, Resume): bound the standing window with TopK or
// Limit.
func (c *Corpus) Subscribe(q Query) (*Subscription, error) {
	return c.subs.Subscribe(q)
}

// DeltaFilter narrows which window movements a standing-query consumer is
// told about: only rows entering the window, only rank jumps of at least
// MinRankJump, only score moves of at least MinScoreDelta (entries and
// departures always pass the numeric thresholds). The zero filter passes
// everything. Filtered subscribers of one canonical query still share the
// query's single per-tick evaluation — and subscribers sharing a filter
// share its filtered view too.
type DeltaFilter = subscribe.Filter

// SubscribeFiltered is Subscribe with a delta filter: ticks whose
// filtered delta is empty still deliver an event (the since-token keeps
// advancing) but carry no changes — and cost push sinks and SSE streams
// of the same filter zero bytes.
func (c *Corpus) SubscribeFiltered(q Query, f DeltaFilter) (*Subscription, error) {
	return c.subs.SubscribeWith(q, f)
}

// SinkStats is one push sink's observable delivery state; see Sinks.
type SinkStats = deliver.SinkStats

// WebhookSink pushes delta envelopes to a remote URL; register it with
// Sinks().Register or over POST /api/v1/sinks.
type WebhookSink = deliver.WebhookSink

// SinkConfig describes one push sink for Sinks().Register: the transport,
// its standing query and an optional delta filter.
type SinkConfig = deliver.SinkConfig

// BindQuery binds an /api/v1-style URL query string (min_score=0.6&k=10,
// scope, predicates, ranking axis) to a Query — the same binding the HTTP
// API applies, exported so flag- and config-driven callers accept the
// exact watch query-string form.
func BindQuery(v url.Values) (Query, error) { return apiserve.BindQuery(v) }

// BindDeltaFilter binds the delta-filter parameters shared by watch,
// stream and sinks (changes=entered|all, min_rank_jump=N,
// min_score_delta=x) to a DeltaFilter.
func BindDeltaFilter(v url.Values) (DeltaFilter, error) { return apiserve.BindFilter(v) }

// Sinks returns the corpus' push-delivery manager: remote sinks (webhook
// POST, or any deliver.Sink) attached to the same standing-query registry
// the in-process and HTTP observers fan out of, each with a bounded
// coalescing queue, bounded retries with backoff, a circuit breaker and
// eviction-with-resync (DESIGN.md section 10). The manager is built on
// first use; APIHandler mounts its management endpoints at /api/v1/sinks.
// Shutdown flushes and closes it.
func (c *Corpus) Sinks() *deliver.Manager {
	c.sinksOnce.Do(func() {
		c.sinks = deliver.NewManager(c.subs, deliver.Options{})
	})
	return c.sinks
}

// Shutdown degrades the corpus' serving side gracefully: pending push
// deliveries are flushed within the context's deadline, then the
// subscription registry closes — in-process subscribers' event channels
// end and open SSE streams receive their terminal resync frame. Reads
// (QuerySources, APIHandler's snapshot endpoints) keep working; only the
// standing-query fan-out ends. Returns the context's error when the sink
// flush was cut short. Safe to call more than once.
func (c *Corpus) Shutdown(ctx context.Context) error {
	var err error
	c.sinksOnce.Do(func() {}) // a never-built manager needs no flush
	if c.sinks != nil {
		err = c.sinks.Close(ctx)
	}
	c.subs.Close()
	return err
}

// Changed returns a channel that is closed when a snapshot newer than the
// current one is published. Grab the channel, then read the state; a swap
// between the two closes the grabbed channel, so no publication can be
// missed.
//
// Deprecated: Changed is the low-level wake-up primitive retained for
// poll-style callers; it tells an observer that something changed but not
// what. Use Subscribe, which delivers the actual window delta of a
// standing query, evaluated once per tick however many subscribers share
// it.
func (c *Corpus) Changed() <-chan struct{} { return c.subs.Changed() }

// LastDelta returns the Delta of the tick that produced the current
// snapshot — which sources and contributors changed, and how much content
// arrived — or nil before the first effective Advance. Monitoring loops
// use it to drive conditional re-crawls and churn dashboards.
func (c *Corpus) LastDelta() *Delta { return c.state.Load().delta }

// SourceReport archives the current source ranking for later comparison.
func (c *Corpus) SourceReport() *Report {
	st := c.state.Load()
	return quality.NewSourceReport(st.env.Sources, st.env.Sources.Rank(st.env.SourceRecords), st.world.Config.End)
}

// ContributorReport archives the current contributor ranking.
func (c *Corpus) ContributorReport() *Report {
	st := c.state.Load()
	return quality.NewContributorReport(st.env.Contributors, st.env.Contributors.Rank(st.env.ContributorRecords), st.world.Config.End)
}

// Report is a serialisable ranking snapshot; see WriteJSON/ReadReport.
type Report = quality.Report

// ReadReport parses a report written with Report.WriteJSON.
func ReadReport(r io.Reader) (*Report, error) { return quality.ReadReport(r) }

// RankShift diffs two reports: per item name, positive means it climbed.
func RankShift(old, new *Report) map[string]int { return quality.RankShift(old, new) }

// TrendingTerms extracts the buzz words of a category against the whole
// corpus as background (the "feature extraction for buzz word
// identification" analysis service of Section 5). Requires CommentText.
// Term counts come from the shared cached corpus pass (see scan.go), so
// calling this for every category costs one scan, not one per category.
func (c *Corpus) TrendingTerms(category string, k int) []BuzzTerm {
	return c.state.Load().trendingTerms(category, k)
}

// BuzzTerm is one scored buzz word.
type BuzzTerm = buzz.Term
