// Package informer is the public face of the Informing Observers library:
// quality-driven filtering and composition of Web 2.0 sources, after
// Barbagallo, Cappiello, Francalanci, Matera and Picozzi (EDBT 2012).
//
// The library assesses Web 2.0 sources and contributors along the paper's
// quality model (data-quality dimensions crossed with Web 2.0 attributes,
// Tables 1 and 2), detects influencers with spam-resistant combined
// scoring (Section 3.2), and lets callers compose quality-aware analysis
// dashboards out of data services, filters, analyzers and synchronised
// viewers (Sections 5 and 6).
//
// A Corpus bundles a (synthetic, deterministic) Web 2.0 world with its
// analytics panel and pre-computed quality assessments:
//
//	c := informer.New(informer.Config{Seed: 42, NumSources: 200})
//	for _, a := range c.RankSources()[:10] {
//	    fmt.Println(a.Name, a.Score)
//	}
//
// Mashups are declared in JSON and executed with live viewer
// synchronisation:
//
//	rt, _ := c.NewMashup([]byte(compositionJSON))
//	dash, _ := rt.Run()
//	fmt.Println(dash.Render())
//
// The types below are aliases of the implementation packages so that
// downstream code can name every value the facade returns.
package informer

import (
	"context"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/buzz"
	"github.com/informing-observers/informer/internal/crawler"
	"github.com/informing-observers/informer/internal/mashup"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/search"
	"github.com/informing-observers/informer/internal/sentiment"
	"github.com/informing-observers/informer/internal/services"
	"github.com/informing-observers/informer/internal/social"
	"github.com/informing-observers/informer/internal/webgen"
	"github.com/informing-observers/informer/internal/webserve"
)

// Re-exported model types. Aliases keep the public API nameable by
// importers while the implementation lives in internal packages.
type (
	// DomainOfInterest scopes domain-dependent quality measures.
	DomainOfInterest = quality.DomainOfInterest
	// Assessment is a full quality evaluation of a source or contributor.
	Assessment = quality.Assessment
	// SourceRecord / ContributorRecord are the raw observation records.
	SourceRecord      = quality.SourceRecord
	ContributorRecord = quality.ContributorRecord
	// Influencer is a detected opinion leader.
	Influencer = quality.Influencer
	// InfluencerOptions configures influencer detection.
	InfluencerOptions = quality.InfluencerOptions
	// World is the synthetic Web 2.0 corpus.
	World = webgen.World
	// WorldConfig configures corpus generation.
	WorldConfig = webgen.Config
	// SearchResult is one baseline search hit.
	SearchResult = search.Result
	// Dashboard is an executed mashup's rendered state.
	Dashboard = mashup.Dashboard
	// MashupRuntime is an instantiated, executable composition.
	MashupRuntime = mashup.Runtime
	// MashupEvent is a viewer event (selection) for Emit.
	MashupEvent = mashup.Item
	// SentimentIndicator is a per-category sentiment summary.
	SentimentIndicator = sentiment.Indicator
	// MicroblogDataset is the annotated account dataset of Section 4.2.
	MicroblogDataset = social.Dataset
	// MicroblogConfig configures microblog generation.
	MicroblogConfig = social.Config
)

// Influencer strategies (Section 3.2).
const (
	ByActivity = quality.ByActivity
	ByRelative = quality.ByRelative
	Combined   = quality.Combined
)

// Config configures a Corpus.
type Config struct {
	// Seed drives every generator deterministically (default 1).
	Seed int64
	// NumSources and NumUsers size the world (defaults 100 / 200).
	NumSources, NumUsers int
	// CommentText generates full comment bodies (needed for sentiment
	// analysis and crawling demos).
	CommentText bool
	// SpamRate injects spam/bot users for robustness experiments.
	SpamRate float64
	// DI scopes the analysis; empty means all of the world's categories.
	DI DomainOfInterest
}

// Corpus is an assessed Web 2.0 world: the paper's analysis environment.
type Corpus struct {
	World *World
	DI    DomainOfInterest

	panel        *analytics.Panel
	env          *services.Env
	engine       *search.Engine
	srcAssessor  *quality.SourceAssessor
	userAssessor *quality.ContributorAssessor
	records      []*SourceRecord
	userRecords  []*ContributorRecord

	// scan caches the corpus-wide comment pass shared by
	// SentimentByCategory and TrendingTerms (see scan.go).
	scanOnce sync.Once
	scan     *commentScan
}

// New generates and assesses a corpus.
func New(cfg Config) *Corpus {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	world := webgen.Generate(webgen.Config{
		Seed:        cfg.Seed,
		NumSources:  cfg.NumSources,
		NumUsers:    cfg.NumUsers,
		CommentText: cfg.CommentText,
		SpamRate:    cfg.SpamRate,
	})
	return FromWorld(world, cfg.DI, cfg.Seed)
}

// FromWorld assesses an existing world (generated with custom options).
func FromWorld(world *World, di DomainOfInterest, seed int64) *Corpus {
	if len(di.Categories) == 0 {
		di.Categories = world.Categories
	}
	panel := analytics.Build(world, seed+1)
	env := services.NewEnv(world, panel, di)
	c := &Corpus{
		World:        world,
		DI:           di,
		panel:        panel,
		env:          env,
		engine:       search.NewEngine(world, panel, search.Config{Seed: seed + 2}),
		records:      env.SourceRecords,
		userRecords:  env.ContributorRecords,
		srcAssessor:  env.Sources,
		userAssessor: env.Contributors,
	}
	return c
}

// SourceRecords exposes the raw source observation records.
func (c *Corpus) SourceRecords() []*SourceRecord { return c.records }

// ContributorRecords exposes the raw contributor records.
func (c *Corpus) ContributorRecords() []*ContributorRecord { return c.userRecords }

// AssessSource evaluates all Table 1 measures for one source.
func (c *Corpus) AssessSource(id int) (*Assessment, bool) {
	if id < 0 || id >= len(c.records) {
		return nil, false
	}
	return c.srcAssessor.Assess(c.records[id]), true
}

// RankSources assesses and ranks every source, best first.
func (c *Corpus) RankSources() []*Assessment {
	return c.srcAssessor.Rank(c.records)
}

// AssessContributor evaluates all Table 2 measures for one user.
func (c *Corpus) AssessContributor(id int) (*Assessment, bool) {
	if id < 0 || id >= len(c.userRecords) {
		return nil, false
	}
	return c.userAssessor.Assess(c.userRecords[id]), true
}

// RankContributors assesses and ranks every contributor, best first.
func (c *Corpus) RankContributors() []*Assessment {
	return c.userAssessor.Rank(c.userRecords)
}

// Influencers detects opinion leaders (Section 3.2).
func (c *Corpus) Influencers(opts InfluencerOptions) []Influencer {
	return quality.Influencers(c.userAssessor, c.userRecords, opts)
}

// Search queries the built-in search-engine baseline (the paper's Google
// stand-in) over the corpus.
func (c *Corpus) Search(query string, k int) []SearchResult {
	return c.engine.Search(query, k)
}

// SentimentByCategory scores every comment in the corpus and aggregates
// per-category indicators, weighting each source by its quality score
// (Section 6). Requires a corpus generated with CommentText. The
// underlying corpus pass runs once per Corpus, scoring sources in
// parallel, and is shared with TrendingTerms (see scan.go) — like the
// quality assessments, it snapshots the world at first use; after Advance,
// read from the returned fresh Corpus.
func (c *Corpus) SentimentByCategory() map[string]SentimentIndicator {
	out := map[string]SentimentIndicator{}
	for cat, bySource := range c.commentScan().sentiByCatSource {
		var entries []sentiment.SourceSentiment
		total := 0
		for sid, cl := range bySource {
			entries = append(entries, sentiment.SourceSentiment{
				SourceID: sid,
				Quality:  c.env.SourceScores[sid],
				Mean:     cl.sum / float64(cl.n),
				N:        cl.n,
			})
			total += cl.n
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].SourceID < entries[j].SourceID })
		out[cat] = SentimentIndicator{
			Category: cat,
			Mean:     sentiment.QualityWeighted(entries),
			N:        total,
		}
	}
	return out
}

// NewMashup parses a JSON composition and instantiates it against this
// corpus' component registry (builtins plus the quality/sentiment/data
// services of Section 5).
func (c *Corpus) NewMashup(compositionJSON []byte) (*MashupRuntime, error) {
	comp, err := mashup.ParseComposition(compositionJSON)
	if err != nil {
		return nil, err
	}
	return mashup.NewRuntime(comp, services.NewRegistry(c.env))
}

// RunMashup parses, instantiates and runs a composition in one call.
func (c *Corpus) RunMashup(compositionJSON []byte) (*Dashboard, error) {
	rt, err := c.NewMashup(compositionJSON)
	if err != nil {
		return nil, err
	}
	return rt.Run()
}

// EmitSelect fires a selection event on a viewer, returning the refreshed
// dashboard (Figure 1's synchronised viewing).
func EmitSelect(rt *MashupRuntime, viewerID string, payload MashupEvent) (*Dashboard, error) {
	return rt.Emit(mashup.Event{Source: viewerID, Name: "select", Payload: payload})
}

// Handler serves the corpus over HTTP (per-source pages, discussion pages
// with data islands, RSS/Atom feeds, sitemap) so it can be crawled like
// the live Web.
func (c *Corpus) Handler() http.Handler { return webserve.New(c.World) }

// PanelHandler serves the analytics panel (the Alexa substitute) as a
// JSON API.
func (c *Corpus) PanelHandler() http.Handler { return c.panel.Handler() }

// CrawlOptions configures Crawl.
type CrawlOptions struct {
	// Workers bounds concurrency (default 8); Delay is the politeness
	// pause per request.
	Workers int
	Delay   time.Duration
	// FetchFeeds additionally parses each source's RSS feed.
	FetchFeeds bool
}

// Crawl walks a corpus served at baseURL over real HTTP and returns source
// records joined with this corpus' analytics panel, ready for assessment.
// observedAt/windowDays follow the served world's timeline.
func (c *Corpus) Crawl(ctx context.Context, baseURL string, opts CrawlOptions) ([]*SourceRecord, error) {
	snap, err := crawler.Crawl(ctx, crawler.Config{
		BaseURL:    baseURL,
		Workers:    opts.Workers,
		Delay:      opts.Delay,
		FetchFeeds: opts.FetchFeeds,
	})
	if err != nil {
		return nil, err
	}
	return quality.SourceRecordsFromSnapshot(snap, c.panel, c.World.Config.End, c.World.Days()), nil
}

// AssessRecords ranks externally obtained records (e.g. from Crawl) with
// benchmarks derived from those same records.
func (c *Corpus) AssessRecords(records []*SourceRecord) []*Assessment {
	return quality.NewSourceAssessor(records, c.DI, nil).Rank(records)
}

// GenerateMicroblog builds the annotated microblog dataset of Section 4.2
// (813 accounts by default) and its contributor records.
func GenerateMicroblog(cfg MicroblogConfig) (*MicroblogDataset, []*ContributorRecord) {
	ds := social.Generate(cfg)
	obs := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	return ds, quality.ContributorRecordsFromSocial(ds, obs)
}

// AssessMicroblog ranks microblog contributors with Table 2 measures.
func AssessMicroblog(records []*ContributorRecord) []*Assessment {
	return quality.NewContributorAssessor(records, DomainOfInterest{}, nil).Rank(records)
}

// Advance extends the corpus timeline by the given number of days,
// generating fresh activity (the monitoring scenario: content keeps
// arriving between assessment rounds), and re-assesses everything.
// The returned Corpus shares the underlying (mutated) world; use it — not
// the receiver — for post-advance readings, since the receiver's cached
// assessments and comment scan reflect the pre-advance world.
func (c *Corpus) Advance(days int, seed int64) *Corpus {
	webgen.Advance(c.World, days, seed)
	return FromWorld(c.World, c.DI, seed)
}

// SourceReport archives the current source ranking for later comparison.
func (c *Corpus) SourceReport() *Report {
	return quality.NewSourceReport(c.srcAssessor, c.RankSources(), c.World.Config.End)
}

// ContributorReport archives the current contributor ranking.
func (c *Corpus) ContributorReport() *Report {
	return quality.NewContributorReport(c.userAssessor, c.RankContributors(), c.World.Config.End)
}

// Report is a serialisable ranking snapshot; see WriteJSON/ReadReport.
type Report = quality.Report

// ReadReport parses a report written with Report.WriteJSON.
func ReadReport(r io.Reader) (*Report, error) { return quality.ReadReport(r) }

// RankShift diffs two reports: per item name, positive means it climbed.
func RankShift(old, new *Report) map[string]int { return quality.RankShift(old, new) }

// TrendingTerms extracts the buzz words of a category against the whole
// corpus as background (the "feature extraction for buzz word
// identification" analysis service of Section 5). Requires CommentText.
// Term counts come from the shared cached corpus pass (see scan.go), so
// calling this for every category costs one scan, not one per category.
func (c *Corpus) TrendingTerms(category string, k int) []BuzzTerm {
	scan := c.commentScan()
	fg := scan.fgByCategory[category]
	if fg == nil {
		fg = buzz.NewCounts()
	}
	return buzz.TopTerms(fg, scan.bg, k, 2)
}

// BuzzTerm is one scored buzz word.
type BuzzTerm = buzz.Term
