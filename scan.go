package informer

// The comment scan is the shared single pass behind the corpus-wide text
// analytics: SentimentByCategory and TrendingTerms used to walk every
// source, discussion and comment independently (and the sentiment path
// additionally rebuilt its analyzer per call). The scan walks the corpus
// once, scoring sources in parallel — each worker owns a contiguous chunk
// of sources and produces a per-source partial, so the merged result never
// depends on scheduling — and caches both the DI-scoped per-category
// sentiment cells and the per-category/background term counts.
//
// The per-source partials are retained: after an Advance tick the next
// snapshot inherits them and re-scans only the sources the tick touched
// (per-source invalidation instead of wholesale), then re-merges. Because
// a partial is an exact function of one source's content, the merged
// result is bit-identical to a from-scratch scan of the advanced world.

import (
	"sort"
	"sync"

	"github.com/informing-observers/informer/internal/buzz"
	"github.com/informing-observers/informer/internal/parallel"
	"github.com/informing-observers/informer/internal/sentiment"
	"github.com/informing-observers/informer/internal/webgen"
)

// sentimentCell accumulates the comment sentiment of one (category,
// source) pair.
type sentimentCell struct {
	sum float64
	n   int
}

// commentScan is the cached result of one pass over every comment.
type commentScan struct {
	// sentiByCatSource holds DI-scoped sentiment accumulation:
	// category -> source ID -> cell.
	sentiByCatSource map[string]map[int]*sentimentCell
	// fgByCategory counts terms per discussion category (all categories,
	// DI or not — TrendingTerms takes the category verbatim); bg is the
	// background over every comment in the corpus.
	fgByCategory map[string]*buzz.Counts
	bg           *buzz.Counts
	// partials[i] is the scan of source row i, retained for per-source
	// invalidation across Advance ticks.
	partials []*sourcePartial

	// indicators caches the aggregated per-category SentimentIndicator map
	// (built once per assessment round, on first demand). The scan struct
	// is rebuilt per snapshot, so the cache can never leak a previous
	// round's quality weights. The map is shared by every caller — it is
	// immutable by convention.
	indicatorsOnce sync.Once
	indicators     map[string]sentiment.Indicator
}

// sourcePartial is one worker's scan of a single source. Sentiment cells
// are keyed by category only: a partial belongs to exactly one source, so
// merging never reorders floating-point additions within a cell.
type sourcePartial struct {
	senti map[string]*sentimentCell
	fg    map[string]*buzz.Counts
	bg    *buzz.Counts
}

// inheritScan carries the previous snapshot's comment scan into the next
// one, marking the delta's dirty sources stale. If the previous snapshot
// never scanned (the pass is lazy), any pending staleness it inherited is
// propagated instead, so a chain of unread ticks still resolves to a
// minimal re-scan.
//
//informer:mutates fills the successor snapshot before publishAdvance swaps it in
func (st *assessState) inheritScan(prev *assessState, delta interface{ DirtySourceIDs() []int }) {
	prev.scanMu.Lock()
	base, stale := prev.scan, map[int]bool{}
	if base == nil {
		base = prev.scanBase
		for row := range prev.scanStale {
			stale[row] = true
		}
	}
	prev.scanMu.Unlock()
	if base == nil {
		return // previous snapshot never scanned: stay lazy and cold
	}
	rowByID := make(map[int]int, len(st.world.Sources))
	for i, s := range st.world.Sources {
		rowByID[s.ID] = i
	}
	for _, id := range delta.DirtySourceIDs() {
		if row, ok := rowByID[id]; ok {
			stale[row] = true
		}
	}
	st.scanBase, st.scanStale = base, stale
}

// commentScan builds (or incrementally repairs) and returns the snapshot's
// corpus comment scan.
//
//informer:mutates memoised lazy scan guarded by scanMu
func (st *assessState) commentScan() *commentScan {
	st.scanMu.Lock()
	defer st.scanMu.Unlock()
	if st.scan != nil {
		return st.scan
	}
	analyzer := st.env.Analyzer
	sources := st.world.Sources
	di := st.env.DI
	partials := make([]*sourcePartial, len(sources))

	if base := st.scanBase; base != nil && len(base.partials) == len(sources) {
		// Incremental repair: reuse the inherited partial of every clean
		// source; re-scan only the stale rows.
		copy(partials, base.partials)
		stale := make([]int, 0, len(st.scanStale))
		for row := range st.scanStale {
			stale = append(stale, row)
		}
		sort.Ints(stale)
		parallel.ForEachChunk(len(stale), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := stale[i]
				partials[row] = scanSource(sources[row], &di, analyzer)
			}
		})
	} else {
		parallel.ForEachChunk(len(sources), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				partials[i] = scanSource(sources[i], &di, analyzer)
			}
		})
	}

	scan := &commentScan{
		sentiByCatSource: map[string]map[int]*sentimentCell{},
		fgByCategory:     map[string]*buzz.Counts{},
		bg:               buzz.NewCounts(),
		partials:         partials,
	}
	for i, p := range partials {
		sid := sources[i].ID
		for cat, cell := range p.senti {
			m := scan.sentiByCatSource[cat]
			if m == nil {
				m = map[int]*sentimentCell{}
				scan.sentiByCatSource[cat] = m
			}
			m[sid] = cell
		}
		for cat, fg := range p.fg {
			dst := scan.fgByCategory[cat]
			if dst == nil {
				dst = buzz.NewCounts()
				scan.fgByCategory[cat] = dst
			}
			dst.Merge(fg)
		}
		scan.bg.Merge(p.bg)
	}
	st.scan = scan
	// The inherited base is dead once the repaired scan exists (the next
	// snapshot inherits st.scan directly); drop it so each live snapshot
	// pins at most one scan's worth of term counts.
	st.scanBase, st.scanStale = nil, nil
	return scan
}

// sentimentByCategory aggregates the scan's per-(category, source)
// sentiment cells into quality-weighted per-category indicators. The
// aggregation (entry building, sorting, weighting) used to run on every
// SentimentByCategory call even though the scan itself was cached; it now
// runs once per assessment round and the resulting map is shared.
func (st *assessState) sentimentByCategory() map[string]sentiment.Indicator {
	scan := st.commentScan()
	scan.indicatorsOnce.Do(func() {
		out := make(map[string]sentiment.Indicator, len(scan.sentiByCatSource))
		for cat, bySource := range scan.sentiByCatSource {
			entries := make([]sentiment.SourceSentiment, 0, len(bySource))
			total := 0
			for sid, cl := range bySource {
				entries = append(entries, sentiment.SourceSentiment{
					SourceID: sid,
					Quality:  st.env.SourceScores[sid],
					Mean:     cl.sum / float64(cl.n),
					N:        cl.n,
				})
				total += cl.n
			}
			sort.Slice(entries, func(i, j int) bool { return entries[i].SourceID < entries[j].SourceID })
			out[cat] = sentiment.Indicator{
				Category: cat,
				Mean:     sentiment.QualityWeighted(entries),
				N:        total,
			}
		}
		scan.indicators = out
	})
	return scan.indicators
}

// trendingTerms extracts the buzz words of a category from the snapshot's
// cached corpus pass; see Corpus.TrendingTerms.
func (st *assessState) trendingTerms(category string, k int) []buzz.Term {
	scan := st.commentScan()
	fg := scan.fgByCategory[category]
	if fg == nil {
		fg = buzz.NewCounts()
	}
	return buzz.TopTerms(fg, scan.bg, k, 2)
}

// scanSource walks one source's discussions and comments — the unit of
// both the full pass and per-source invalidation. sentiment.Analyzer is
// safe for concurrent use.
func scanSource(s *webgen.Source, di *DomainOfInterest, analyzer *sentiment.Analyzer) *sourcePartial {
	p := &sourcePartial{
		senti: map[string]*sentimentCell{},
		fg:    map[string]*buzz.Counts{},
		bg:    buzz.NewCounts(),
	}
	for _, d := range s.Discussions {
		inDI := di.InCategory(d.Category)
		fg := p.fg[d.Category]
		if fg == nil {
			fg = buzz.NewCounts()
			p.fg[d.Category] = fg
		}
		for _, com := range d.Comments {
			p.bg.Add(com.Body)
			fg.Add(com.Body)
			if !inDI {
				continue
			}
			cell := p.senti[d.Category]
			if cell == nil {
				cell = &sentimentCell{}
				p.senti[d.Category] = cell
			}
			cell.sum += analyzer.Score(com.Body).Value
			cell.n++
		}
	}
	return p
}
