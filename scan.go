package informer

// The comment scan is the shared single pass behind the corpus-wide text
// analytics: SentimentByCategory and TrendingTerms used to walk every
// source, discussion and comment independently (and the sentiment path
// additionally rebuilt its analyzer per call). The scan walks the corpus
// once, scoring sources in parallel — each worker owns a contiguous chunk
// of sources and produces a per-source partial, so the merged result never
// depends on scheduling — and caches both the DI-scoped per-category
// sentiment cells and the per-category/background term counts.

import (
	"github.com/informing-observers/informer/internal/buzz"
	"github.com/informing-observers/informer/internal/parallel"
)

// sentimentCell accumulates the comment sentiment of one (category,
// source) pair.
type sentimentCell struct {
	sum float64
	n   int
}

// commentScan is the cached result of one pass over every comment.
type commentScan struct {
	// sentiByCatSource holds DI-scoped sentiment accumulation:
	// category -> source ID -> cell.
	sentiByCatSource map[string]map[int]*sentimentCell
	// fgByCategory counts terms per discussion category (all categories,
	// DI or not — TrendingTerms takes the category verbatim); bg is the
	// background over every comment in the corpus.
	fgByCategory map[string]*buzz.Counts
	bg           *buzz.Counts
}

// sourcePartial is one worker's scan of a single source. Sentiment cells
// are keyed by category only: a partial belongs to exactly one source, so
// merging never reorders floating-point additions within a cell.
type sourcePartial struct {
	senti map[string]*sentimentCell
	fg    map[string]*buzz.Counts
	bg    *buzz.Counts
}

// commentScan builds (once) and returns the corpus comment scan.
func (c *Corpus) commentScan() *commentScan {
	c.scanOnce.Do(func() {
		analyzer := c.env.Analyzer
		sources := c.World.Sources
		partials := make([]*sourcePartial, len(sources))

		parallel.ForEachChunk(len(sources), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s := sources[i]
				p := &sourcePartial{
					senti: map[string]*sentimentCell{},
					fg:    map[string]*buzz.Counts{},
					bg:    buzz.NewCounts(),
				}
				for _, d := range s.Discussions {
					inDI := c.DI.InCategory(d.Category)
					fg := p.fg[d.Category]
					if fg == nil {
						fg = buzz.NewCounts()
						p.fg[d.Category] = fg
					}
					for _, com := range d.Comments {
						p.bg.Add(com.Body)
						fg.Add(com.Body)
						if !inDI {
							continue
						}
						cell := p.senti[d.Category]
						if cell == nil {
							cell = &sentimentCell{}
							p.senti[d.Category] = cell
						}
						cell.sum += analyzer.Score(com.Body).Value
						cell.n++
					}
				}
				partials[i] = p
			}
		})

		scan := &commentScan{
			sentiByCatSource: map[string]map[int]*sentimentCell{},
			fgByCategory:     map[string]*buzz.Counts{},
			bg:               buzz.NewCounts(),
		}
		for i, p := range partials {
			sid := sources[i].ID
			for cat, cell := range p.senti {
				m := scan.sentiByCatSource[cat]
				if m == nil {
					m = map[int]*sentimentCell{}
					scan.sentiByCatSource[cat] = m
				}
				m[sid] = cell
			}
			for cat, fg := range p.fg {
				dst := scan.fgByCategory[cat]
				if dst == nil {
					dst = buzz.NewCounts()
					scan.fgByCategory[cat] = dst
				}
				dst.Merge(fg)
			}
			scan.bg.Merge(p.bg)
		}
		c.scan = scan
	})
	return c.scan
}
