package informer

// The PR's transport-equivalence acceptance pin: for the same since-token
// walk, the /api/v1/stream SSE feed and a sequential /api/v1/watch
// long-poll deliver byte-identical delta envelopes — one connection
// carrying many ticks versus one request per tick, same bytes either way.
// Covered both on a small corpus (catch-up frame plus live frames) and on
// the 2000-source ~1% daily churn corpus of the watch acceptance test.

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/informing-observers/informer/internal/webgen"
)

// sseFrame is one parsed SSE frame (comment heartbeats are skipped).
type sseFrame struct {
	event, id, data string
}

func readSSEFrame(t *testing.T, br *bufio.Reader) sseFrame {
	t.Helper()
	var f sseFrame
	seen := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				return f
			}
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "event: "):
			f.event, seen = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "id: "):
			f.id, seen = strings.TrimPrefix(line, "id: "), true
		case strings.HasPrefix(line, "data: "):
			f.data, seen = strings.TrimPrefix(line, "data: "), true
		default:
			t.Fatalf("unexpected stream line %q", line)
		}
	}
}

// longPollBody answers one watch step over the wire and returns the raw
// envelope bytes.
func longPollBody(t *testing.T, base string, since int64, query string) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/watch?since=%d&wait=5s&%s", base, since, query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch since=%d: status %d", since, resp.StatusCode)
	}
	var sb strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// streamEquivalenceWalk runs the shared scenario: register round 1, tick
// once, open the stream behind the current round (so the first delta is a
// catch-up frame), keep ticking, and require every frame — catch-up and
// live alike — to be byte-identical to the sequential long-poll walk of
// the same since-tokens.
func streamEquivalenceWalk(t *testing.T, c *Corpus, query string, ticks int, tickDays int, seed int64) {
	t.Helper()
	srv := httptest.NewServer(c.APIHandler())
	defer srv.Close()

	// Register round 1 in the retention ring, then let the first tick land
	// before the stream connects: the stream opens one round behind.
	if resp, err := http.Get(srv.URL + "/api/v1/sources?limit=1&fields=scores"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	c.Advance(tickDays, seed)
	if c.SnapshotVersion() != 2 {
		t.Fatal("the first tick changed nothing; pick another seed")
	}
	wantBodies := []string{longPollBody(t, srv.URL, 1, query)}

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/api/v1/stream?since=1&"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "identity")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream handshake: status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	if f := readSSEFrame(t, br); f.event != "sync" || f.id != "1" {
		t.Fatalf("sync frame %+v", f)
	}

	// Remaining ticks: tick, then long-poll the step each tick produced.
	// The long-poll goes through the retention-ring catch-up path while
	// the stream consumed the registry fan-out — the equivalence below is
	// therefore across the two computation paths, not one path twice.
	for i := 1; i < ticks; i++ {
		c.Advance(tickDays, seed+int64(i))
		wantBodies = append(wantBodies, longPollBody(t, srv.URL, int64(i+1), query))
	}
	for i, want := range wantBodies {
		f := readSSEFrame(t, br)
		if f.event != "" {
			t.Fatalf("frame %d is %q, want a delta frame", i, f.event)
		}
		if f.id != strconv.Itoa(i+2) {
			t.Fatalf("frame %d id %s, want %d", i, f.id, i+2)
		}
		if f.data != want {
			t.Fatalf("frame %d diverges from the long-poll envelope:\n sse  %s\n poll %s", i, f.data, want)
		}
	}
}

func TestStreamMatchesSequentialLongPoll(t *testing.T) {
	c := New(Config{Seed: 201, NumSources: 40, NumUsers: 100})
	streamEquivalenceWalk(t, c, "min_score=0.3&k=10", 4, 15, 2010)
}

// TestStreamMatchesLongPollLargeChurnCorpus is the at-scale variant: the
// 2000-source ~1% measured daily churn corpus of
// TestWatchDeltaMatchesWindowSetDifference, streamed across three daily
// ticks.
func TestStreamMatchesLongPollLargeChurnCorpus(t *testing.T) {
	world := webgen.Generate(webgen.Config{Seed: 91, NumSources: 2000, ChurnScale: 0.27})
	c := FromWorld(world, DomainOfInterest{}, 91)
	streamEquivalenceWalk(t, c, "min_score=0.5&k=50&fields=scores", 3, 1, 9400)
}
