package informer

// End-to-end contracts of the /api/v1 serving layer over a real corpus:
// an HTTP response must be byte-identical to the equivalent in-process
// Query against the same snapshot (the wire layer adds representation,
// never computation); every endpoint serves; conditional GETs work across
// Advance ticks; and a paginated walk pinned to a snapshot token never
// mixes two assessment rounds, even while a writer ticks the corpus
// concurrently (run under -race in CI).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"github.com/informing-observers/informer/internal/apiserve"
)

func apiGet(t *testing.T, h http.Handler, target string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestAPISourcesByteIdenticalToInProcessQuery is the acceptance contract:
// /api/v1/sources with bound parameters returns exactly the bytes of the
// equivalent in-process Query wrapped in the envelope.
func TestAPISourcesByteIdenticalToInProcessQuery(t *testing.T) {
	c := New(Config{Seed: 171, NumSources: 60, NumUsers: 150, CommentText: true})
	h := c.APIHandler()

	cases := map[string]Query{
		"/api/v1/sources?min_score=0.55&k=10": NewQuery().MinScore(0.55).TopK(10).Build(),
		"/api/v1/sources?category=place&min_dim.time=0.3&sort=dim.time&k=5&fields=scores": NewQuery().
			Categories("place").MinDimension(Time, 0.3).SortByDimension(Time).TopK(5).ScoresOnly().Build(),
		"/api/v1/sources?kind=blog&offset=3&limit=4": NewQuery().Kinds("blog").Page(3, 4).Build(),
	}
	for target, q := range cases {
		rec := apiGet(t, h, target, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", target, rec.Code, rec.Body.String())
		}
		res, err := c.QuerySources(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(apiserve.NewEnvelope(
			c.SnapshotVersion(), res.Total, q.Offset, apiserve.AssessmentItems(res.Items)))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Body.String() != string(want) {
			t.Fatalf("%s: HTTP body diverges from the in-process query\n http: %s\n want: %s",
				target, rec.Body.String(), want)
		}
	}

	// Contributors too, including the spam-resistance predicate.
	target := "/api/v1/contributors?spam_resistance=0.3&k=8"
	rec := apiGet(t, h, target, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s: status %d", target, rec.Code)
	}
	res, err := c.QueryContributors(NewQuery().SpamResistant(0.3).TopK(8).Build())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(apiserve.NewEnvelope(
		c.SnapshotVersion(), res.Total, 0, apiserve.AssessmentItems(res.Items)))
	if rec.Body.String() != string(want) {
		t.Fatalf("%s: HTTP body diverges from the in-process query", target)
	}
}

// TestAPISmoke drives every mounted endpoint once — the serving layer
// cannot rot while this runs in CI.
func TestAPISmoke(t *testing.T) {
	c := New(Config{Seed: 173, NumSources: 30, NumUsers: 90, CommentText: true})
	h := c.APIHandler()
	category := c.World().Categories[0]
	for _, target := range []string{
		"/api/v1/sources?k=5",
		"/api/v1/sources?min_score=0.4&sort=att.traffic&fields=scores",
		"/api/v1/contributors?k=5",
		"/api/v1/influencers?strategy=combined&k=5",
		"/api/v1/sentiment",
		"/api/v1/trending?category=" + category,
		"/api/v1/search?q=hotel+milan&k=5",
	} {
		rec := apiGet(t, h, target, nil)
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status %d: %s", target, rec.Code, rec.Body.String())
			continue
		}
		var env apiserve.Envelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Errorf("%s: bad envelope: %v", target, err)
			continue
		}
		if env.APIVersion != "v1" || env.Snapshot != c.SnapshotVersion() {
			t.Errorf("%s: envelope %+v", target, env)
		}
		items, ok := env.Items.([]any)
		if !ok || len(items) != env.Count {
			t.Errorf("%s: count %d does not match items", target, env.Count)
		}
	}
}

// TestAPIConditionalGetAcrossTicks pins ETag semantics for polling
// clients: same snapshot, same query → 304; after a tick the assessments
// move, so the stale ETag re-fetches a full body with a new token.
func TestAPIConditionalGetAcrossTicks(t *testing.T) {
	c := New(Config{Seed: 175, NumSources: 30, NumUsers: 90, CommentText: true})
	h := c.APIHandler()
	target := "/api/v1/sources?min_score=0.4&k=10"

	first := apiGet(t, h, target, nil)
	etag := first.Header().Get("ETag")
	if etag == "" {
		t.Fatal("missing ETag")
	}
	if rec := apiGet(t, h, target, map[string]string{"If-None-Match": etag}); rec.Code != http.StatusNotModified {
		t.Fatalf("unchanged snapshot: status %d, want 304", rec.Code)
	}

	c.Advance(30, 1750)
	rec := apiGet(t, h, target, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-tick: status %d, want 200", rec.Code)
	}
	if rec.Header().Get("ETag") == etag {
		t.Fatal("post-tick ETag did not change")
	}
	var env apiserve.Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Snapshot != c.SnapshotVersion() || env.Snapshot < 2 {
		t.Fatalf("post-tick snapshot token %d", env.Snapshot)
	}
}

// apiWalk pages through /api/v1/sources pinned to the first page's
// snapshot token and returns the concatenated item IDs plus the token. A
// 410 (pin aged out) restarts the walk from the current round.
func apiWalk(t *testing.T, h http.Handler, pageSize int) ([]int, []float64, int64) {
	t.Helper()
restart:
	for {
		first := apiGet(t, h, fmt.Sprintf("/api/v1/sources?fields=scores&limit=%d", pageSize), nil)
		if first.Code != http.StatusOK {
			t.Fatalf("first page: status %d", first.Code)
		}
		var env struct {
			Snapshot int64 `json:"snapshot"`
			Total    int   `json:"total"`
			Items    []struct {
				ID    int     `json:"id"`
				Score float64 `json:"score"`
			} `json:"items"`
		}
		if err := json.Unmarshal(first.Body.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		token := env.Snapshot
		var ids []int
		var scores []float64
		for _, it := range env.Items {
			ids = append(ids, it.ID)
			scores = append(scores, it.Score)
		}
		for offset := pageSize; offset < env.Total; offset += pageSize {
			rec := apiGet(t, h, fmt.Sprintf("/api/v1/sources?fields=scores&limit=%d&offset=%d&snapshot=%d",
				pageSize, offset, token), nil)
			if rec.Code == http.StatusGone {
				continue restart
			}
			if rec.Code != http.StatusOK {
				t.Fatalf("page at %d: status %d", offset, rec.Code)
			}
			var page struct {
				Snapshot int64 `json:"snapshot"`
				Items    []struct {
					ID    int     `json:"id"`
					Score float64 `json:"score"`
				} `json:"items"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
				t.Fatal(err)
			}
			if page.Snapshot != token {
				t.Fatalf("pinned walk changed rounds: %d then %d", token, page.Snapshot)
			}
			for _, it := range page.Items {
				ids = append(ids, it.ID)
				scores = append(scores, it.Score)
			}
		}
		return ids, scores, token
	}
}

// TestAPIPaginatedWalkPinnedAcrossAdvance ticks the corpus between pages
// deterministically: the pinned walk must keep reading the pre-tick round
// and match the pre-tick in-process ranking exactly.
func TestAPIPaginatedWalkPinnedAcrossAdvance(t *testing.T) {
	c := New(Config{Seed: 177, NumSources: 40, NumUsers: 120, CommentText: true})
	h := c.APIHandler()

	before, err := c.QuerySources(NewQuery().ScoresOnly().Build())
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := make([]int, len(before.Items))
	for i, a := range before.Items {
		wantIDs[i] = a.ID
	}

	// First page on round 1, then tick, then keep walking pinned.
	first := apiGet(t, h, "/api/v1/sources?fields=scores&limit=15", nil)
	var env struct {
		Snapshot int64 `json:"snapshot"`
		Total    int   `json:"total"`
		Items    []struct {
			ID int `json:"id"`
		} `json:"items"`
	}
	if err := json.Unmarshal(first.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	c.Advance(20, 1770)
	if c.SnapshotVersion() != 2 {
		t.Fatalf("tick did not move the snapshot: %d", c.SnapshotVersion())
	}

	got := []int{}
	for _, it := range env.Items {
		got = append(got, it.ID)
	}
	for offset := 15; offset < env.Total; offset += 15 {
		rec := apiGet(t, h, fmt.Sprintf("/api/v1/sources?fields=scores&limit=15&offset=%d&snapshot=%d", offset, env.Snapshot), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("pinned page: status %d: %s", rec.Code, rec.Body.String())
		}
		var page struct {
			Snapshot int64 `json:"snapshot"`
			Items    []struct {
				ID int `json:"id"`
			} `json:"items"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		if page.Snapshot != env.Snapshot {
			t.Fatalf("pinned page served round %d, want %d", page.Snapshot, env.Snapshot)
		}
		for _, it := range page.Items {
			got = append(got, it.ID)
		}
	}
	if !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("pinned walk diverged from the pre-tick ranking:\n got  %v\n want %v", got, wantIDs)
	}

	// An unpinned request now serves round 2.
	var cur struct {
		Snapshot int64 `json:"snapshot"`
	}
	rec := apiGet(t, h, "/api/v1/sources?limit=1", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &cur); err != nil {
		t.Fatal(err)
	}
	if cur.Snapshot != 2 {
		t.Fatalf("unpinned request served round %d, want 2", cur.Snapshot)
	}
}

// TestAPIConcurrentReadersDuringAdvance hammers every endpoint, including
// full pinned paginated walks, while a writer ticks the corpus — run with
// -race in CI. Each walk asserts its snapshot token never changes
// mid-walk, there are no duplicate IDs, and scores arrive non-increasing:
// any mix of two assessment rounds would break at least one of those.
func TestAPIConcurrentReadersDuringAdvance(t *testing.T) {
	c := New(Config{Seed: 179, NumSources: 30, NumUsers: 90, CommentText: true})
	h := c.APIHandler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	walker := func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ids, scores, _ := apiWalk(t, h, 7)
			seen := map[int]bool{}
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate id %d in pinned walk", id)
					return
				}
				seen[id] = true
			}
			if len(ids) != 30 {
				t.Errorf("walk returned %d sources, want 30", len(ids))
				return
			}
			for i := 1; i < len(scores); i++ {
				if scores[i] > scores[i-1] {
					t.Errorf("walk scores not ranked at %d", i)
					return
				}
			}
		}
	}
	poller := func(target string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := apiGet(t, h, target, nil)
			if rec.Code != http.StatusOK {
				t.Errorf("%s: status %d during advance", target, rec.Code)
				return
			}
		}
	}
	wg.Add(5)
	go walker()
	go walker()
	go poller("/api/v1/influencers?k=5")
	go poller("/api/v1/sentiment")
	go poller("/api/v1/contributors?k=5&fields=scores")

	for i := 0; i < 5; i++ {
		c.Advance(2, int64(1790+i))
	}
	close(stop)
	wg.Wait()
}
