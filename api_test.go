package informer

// End-to-end contracts of the /api/v1 serving layer over a real corpus:
// an HTTP response must be byte-identical to the equivalent in-process
// Query against the same snapshot (the wire layer adds representation,
// never computation); every endpoint serves; conditional GETs work across
// Advance ticks; and a paginated walk pinned to a snapshot token never
// mixes two assessment rounds, even while a writer ticks the corpus
// concurrently (run under -race in CI).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/apiserve"
)

func apiGet(t *testing.T, h http.Handler, target string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestAPISourcesByteIdenticalToInProcessQuery is the acceptance contract:
// /api/v1/sources with bound parameters returns exactly the bytes of the
// equivalent in-process Query wrapped in the envelope.
func TestAPISourcesByteIdenticalToInProcessQuery(t *testing.T) {
	c := New(Config{Seed: 171, NumSources: 60, NumUsers: 150, CommentText: true})
	h := c.APIHandler()

	cases := map[string]Query{
		"/api/v1/sources?min_score=0.55&k=10": NewQuery().MinScore(0.55).TopK(10).Build(),
		"/api/v1/sources?category=place&min_dim.time=0.3&sort=dim.time&k=5&fields=scores": NewQuery().
			Categories("place").MinDimension(Time, 0.3).SortByDimension(Time).TopK(5).ScoresOnly().Build(),
		"/api/v1/sources?kind=blog&offset=3&limit=4": NewQuery().Kinds("blog").Page(3, 4).Build(),
	}
	for target, q := range cases {
		rec := apiGet(t, h, target, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", target, rec.Code, rec.Body.String())
		}
		res, err := c.QuerySources(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(apiserve.NewEnvelope(
			c.SnapshotVersion(), res.Total, res.Start, apiserve.NextCursorOf(res, c.ShardCount()), apiserve.AssessmentItems(res.Items)))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Body.String() != string(want) {
			t.Fatalf("%s: HTTP body diverges from the in-process query\n http: %s\n want: %s",
				target, rec.Body.String(), want)
		}
	}

	// Contributors too, including the spam-resistance predicate.
	target := "/api/v1/contributors?spam_resistance=0.3&k=8"
	rec := apiGet(t, h, target, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s: status %d", target, rec.Code)
	}
	res, err := c.QueryContributors(NewQuery().SpamResistant(0.3).TopK(8).Build())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(apiserve.NewEnvelope(
		c.SnapshotVersion(), res.Total, 0, apiserve.NextCursorOf(res, c.ShardCount()), apiserve.AssessmentItems(res.Items)))
	if rec.Body.String() != string(want) {
		t.Fatalf("%s: HTTP body diverges from the in-process query", target)
	}
}

// TestAPISmoke drives every mounted endpoint once — the serving layer
// cannot rot while this runs in CI.
func TestAPISmoke(t *testing.T) {
	c := New(Config{Seed: 173, NumSources: 30, NumUsers: 90, CommentText: true})
	h := c.APIHandler()
	category := c.World().Categories[0]
	for _, target := range []string{
		"/api/v1/sources?k=5",
		"/api/v1/sources?min_score=0.4&sort=att.traffic&fields=scores",
		"/api/v1/contributors?k=5",
		"/api/v1/influencers?strategy=combined&k=5",
		"/api/v1/sentiment",
		"/api/v1/trending?category=" + category,
		"/api/v1/search?q=hotel+milan&k=5",
	} {
		rec := apiGet(t, h, target, nil)
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status %d: %s", target, rec.Code, rec.Body.String())
			continue
		}
		var env apiserve.Envelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Errorf("%s: bad envelope: %v", target, err)
			continue
		}
		if env.APIVersion != "v1" || env.Snapshot != c.SnapshotVersion() {
			t.Errorf("%s: envelope %+v", target, env)
		}
		items, ok := env.Items.([]any)
		if !ok || len(items) != env.Count {
			t.Errorf("%s: count %d does not match items", target, env.Count)
		}
	}
}

// TestAPIConditionalGetAcrossTicks pins ETag semantics for polling
// clients: same snapshot, same query → 304; after a tick the assessments
// move, so the stale ETag re-fetches a full body with a new token.
func TestAPIConditionalGetAcrossTicks(t *testing.T) {
	c := New(Config{Seed: 175, NumSources: 30, NumUsers: 90, CommentText: true})
	h := c.APIHandler()
	target := "/api/v1/sources?min_score=0.4&k=10"

	first := apiGet(t, h, target, nil)
	etag := first.Header().Get("ETag")
	if etag == "" {
		t.Fatal("missing ETag")
	}
	if rec := apiGet(t, h, target, map[string]string{"If-None-Match": etag}); rec.Code != http.StatusNotModified {
		t.Fatalf("unchanged snapshot: status %d, want 304", rec.Code)
	}

	c.Advance(30, 1750)
	rec := apiGet(t, h, target, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-tick: status %d, want 200", rec.Code)
	}
	if rec.Header().Get("ETag") == etag {
		t.Fatal("post-tick ETag did not change")
	}
	var env apiserve.Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Snapshot != c.SnapshotVersion() || env.Snapshot < 2 {
		t.Fatalf("post-tick snapshot token %d", env.Snapshot)
	}
}

// apiWalk pages through /api/v1/sources pinned to the first page's
// snapshot token and returns the concatenated item IDs plus the token. A
// 410 (pin aged out) restarts the walk from the current round.
func apiWalk(t *testing.T, h http.Handler, pageSize int) ([]int, []float64, int64) {
	t.Helper()
restart:
	for {
		first := apiGet(t, h, fmt.Sprintf("/api/v1/sources?fields=scores&limit=%d", pageSize), nil)
		if first.Code != http.StatusOK {
			t.Fatalf("first page: status %d", first.Code)
		}
		var env struct {
			Snapshot int64 `json:"snapshot"`
			Total    int   `json:"total"`
			Items    []struct {
				ID    int     `json:"id"`
				Score float64 `json:"score"`
			} `json:"items"`
		}
		if err := json.Unmarshal(first.Body.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		token := env.Snapshot
		var ids []int
		var scores []float64
		for _, it := range env.Items {
			ids = append(ids, it.ID)
			scores = append(scores, it.Score)
		}
		for offset := pageSize; offset < env.Total; offset += pageSize {
			rec := apiGet(t, h, fmt.Sprintf("/api/v1/sources?fields=scores&limit=%d&offset=%d&snapshot=%d",
				pageSize, offset, token), nil)
			if rec.Code == http.StatusGone {
				continue restart
			}
			if rec.Code != http.StatusOK {
				t.Fatalf("page at %d: status %d", offset, rec.Code)
			}
			var page struct {
				Snapshot int64 `json:"snapshot"`
				Items    []struct {
					ID    int     `json:"id"`
					Score float64 `json:"score"`
				} `json:"items"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
				t.Fatal(err)
			}
			if page.Snapshot != token {
				t.Fatalf("pinned walk changed rounds: %d then %d", token, page.Snapshot)
			}
			for _, it := range page.Items {
				ids = append(ids, it.ID)
				scores = append(scores, it.Score)
			}
		}
		return ids, scores, token
	}
}

// TestAPIPaginatedWalkPinnedAcrossAdvance ticks the corpus between pages
// deterministically: the pinned walk must keep reading the pre-tick round
// and match the pre-tick in-process ranking exactly.
func TestAPIPaginatedWalkPinnedAcrossAdvance(t *testing.T) {
	c := New(Config{Seed: 177, NumSources: 40, NumUsers: 120, CommentText: true})
	h := c.APIHandler()

	before, err := c.QuerySources(NewQuery().ScoresOnly().Build())
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := make([]int, len(before.Items))
	for i, a := range before.Items {
		wantIDs[i] = a.ID
	}

	// First page on round 1, then tick, then keep walking pinned.
	first := apiGet(t, h, "/api/v1/sources?fields=scores&limit=15", nil)
	var env struct {
		Snapshot int64 `json:"snapshot"`
		Total    int   `json:"total"`
		Items    []struct {
			ID int `json:"id"`
		} `json:"items"`
	}
	if err := json.Unmarshal(first.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	c.Advance(20, 1770)
	if c.SnapshotVersion() != 2 {
		t.Fatalf("tick did not move the snapshot: %d", c.SnapshotVersion())
	}

	got := []int{}
	for _, it := range env.Items {
		got = append(got, it.ID)
	}
	for offset := 15; offset < env.Total; offset += 15 {
		rec := apiGet(t, h, fmt.Sprintf("/api/v1/sources?fields=scores&limit=15&offset=%d&snapshot=%d", offset, env.Snapshot), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("pinned page: status %d: %s", rec.Code, rec.Body.String())
		}
		var page struct {
			Snapshot int64 `json:"snapshot"`
			Items    []struct {
				ID int `json:"id"`
			} `json:"items"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		if page.Snapshot != env.Snapshot {
			t.Fatalf("pinned page served round %d, want %d", page.Snapshot, env.Snapshot)
		}
		for _, it := range page.Items {
			got = append(got, it.ID)
		}
	}
	if !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("pinned walk diverged from the pre-tick ranking:\n got  %v\n want %v", got, wantIDs)
	}

	// An unpinned request now serves round 2.
	var cur struct {
		Snapshot int64 `json:"snapshot"`
	}
	rec := apiGet(t, h, "/api/v1/sources?limit=1", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &cur); err != nil {
		t.Fatal(err)
	}
	if cur.Snapshot != 2 {
		t.Fatalf("unpinned request served round %d, want 2", cur.Snapshot)
	}
}

// TestAPIConcurrentReadersDuringAdvance hammers every endpoint, including
// full pinned paginated walks, while a writer ticks the corpus — run with
// -race in CI. Each walk asserts its snapshot token never changes
// mid-walk, there are no duplicate IDs, and scores arrive non-increasing:
// any mix of two assessment rounds would break at least one of those.
func TestAPIConcurrentReadersDuringAdvance(t *testing.T) {
	c := New(Config{Seed: 179, NumSources: 30, NumUsers: 90, CommentText: true})
	h := c.APIHandler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	walker := func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ids, scores, _ := apiWalk(t, h, 7)
			seen := map[int]bool{}
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate id %d in pinned walk", id)
					return
				}
				seen[id] = true
			}
			if len(ids) != 30 {
				t.Errorf("walk returned %d sources, want 30", len(ids))
				return
			}
			for i := 1; i < len(scores); i++ {
				if scores[i] > scores[i-1] {
					t.Errorf("walk scores not ranked at %d", i)
					return
				}
			}
		}
	}
	poller := func(target string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := apiGet(t, h, target, nil)
			if rec.Code != http.StatusOK {
				t.Errorf("%s: status %d during advance", target, rec.Code)
				return
			}
		}
	}
	wg.Add(5)
	go walker()
	go walker()
	go poller("/api/v1/influencers?k=5")
	go poller("/api/v1/sentiment")
	go poller("/api/v1/contributors?k=5&fields=scores")

	for i := 0; i < 5; i++ {
		c.Advance(2, int64(1790+i))
	}
	close(stop)
	wg.Wait()
}

// apiCursorWalk pages through /api/v1/sources by chaining next_cursor
// tokens, pinned to the first page's snapshot. A 410 (pin aged out)
// restarts the walk on the current round.
func apiCursorWalk(t *testing.T, h http.Handler, pageSize int) ([]int, []float64, int64) {
	t.Helper()
restart:
	for {
		first := apiGet(t, h, fmt.Sprintf("/api/v1/sources?fields=scores&limit=%d", pageSize), nil)
		if first.Code != http.StatusOK {
			t.Fatalf("first page: status %d", first.Code)
		}
		var env struct {
			Snapshot   int64  `json:"snapshot"`
			Total      int    `json:"total"`
			NextCursor string `json:"next_cursor"`
			Items      []struct {
				ID    int     `json:"id"`
				Score float64 `json:"score"`
			} `json:"items"`
		}
		if err := json.Unmarshal(first.Body.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		token := env.Snapshot
		var ids []int
		var scores []float64
		for _, it := range env.Items {
			ids = append(ids, it.ID)
			scores = append(scores, it.Score)
		}
		for pages := 0; env.NextCursor != ""; pages++ {
			if pages > 10000 {
				t.Fatal("cursor walk did not terminate")
			}
			rec := apiGet(t, h, fmt.Sprintf("/api/v1/sources?fields=scores&limit=%d&cursor=%s&snapshot=%d",
				pageSize, env.NextCursor, token), nil)
			if rec.Code == http.StatusGone {
				continue restart
			}
			if rec.Code != http.StatusOK {
				t.Fatalf("cursor page: status %d: %s", rec.Code, rec.Body.String())
			}
			env.NextCursor = ""
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatal(err)
			}
			if env.Snapshot != token {
				t.Fatalf("pinned cursor walk changed rounds: %d then %d", token, env.Snapshot)
			}
			for _, it := range env.Items {
				ids = append(ids, it.ID)
				scores = append(scores, it.Score)
			}
		}
		return ids, scores, token
	}
}

// TestAPICursorWalkMatchesOffsetWalk is the keyset-pagination acceptance
// contract over the wire: a chained next_cursor walk returns exactly the
// bytes-worth of rows the deprecated offset walk returns, which in turn
// match the in-process ranking.
func TestAPICursorWalkMatchesOffsetWalk(t *testing.T) {
	c := New(Config{Seed: 181, NumSources: 45, NumUsers: 120, CommentText: true})
	h := c.APIHandler()

	want, err := c.QuerySources(NewQuery().ScoresOnly().Build())
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := make([]int, len(want.Items))
	for i, a := range want.Items {
		wantIDs[i] = a.ID
	}

	cursorIDs, _, _ := apiCursorWalk(t, h, 7)
	offsetIDs, _, _ := apiWalk(t, h, 7)
	if !reflect.DeepEqual(cursorIDs, wantIDs) {
		t.Fatalf("cursor walk diverged from the in-process ranking:\n got  %v\n want %v", cursorIDs, wantIDs)
	}
	if !reflect.DeepEqual(offsetIDs, wantIDs) {
		t.Fatalf("offset walk diverged from the in-process ranking:\n got  %v\n want %v", offsetIDs, wantIDs)
	}

	// Page bodies also carry identical items page for page: page 2 by
	// cursor equals page 2 by offset, byte for byte.
	first := apiGet(t, h, "/api/v1/sources?fields=scores&limit=7", nil)
	var env apiserve.Envelope
	if err := json.Unmarshal(first.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.NextCursor == "" {
		t.Fatal("windowed page must carry next_cursor")
	}
	byCursor := apiGet(t, h, "/api/v1/sources?fields=scores&limit=7&cursor="+env.NextCursor, nil)
	byOffset := apiGet(t, h, "/api/v1/sources?fields=scores&limit=7&offset=7", nil)
	if byCursor.Body.String() != byOffset.Body.String() {
		t.Fatalf("page 2 diverges between cursor and offset:\n cursor: %s\n offset: %s",
			byCursor.Body.String(), byOffset.Body.String())
	}
	// The final page closes the walk: no next_cursor past the end.
	last := apiGet(t, h, "/api/v1/sources?fields=scores&limit=7&offset=42", nil)
	var lastEnv apiserve.Envelope
	if err := json.Unmarshal(last.Body.Bytes(), &lastEnv); err != nil {
		t.Fatal(err)
	}
	if lastEnv.NextCursor != "" {
		t.Fatal("exhausted walk must not carry next_cursor")
	}

	// cursor and offset together are rejected.
	if rec := apiGet(t, h, "/api/v1/sources?cursor=AAAA&offset=3", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("cursor+offset: status %d, want 400", rec.Code)
	}
}

// TestAPIWatchEndToEnd drives /api/v1/watch over a real corpus: the delta
// between two assessment rounds must reproduce DiffWindows of the two
// in-process windows exactly; an unmoved round answers an empty delta
// after the wait; an aged since-token answers 410.
func TestAPIWatchEndToEnd(t *testing.T) {
	c := New(Config{Seed: 183, NumSources: 40, NumUsers: 100, CommentText: true})
	h := c.APIHandler()

	// Register round 1 in the retention ring and archive its window.
	apiGet(t, h, "/api/v1/sources?limit=1", nil)
	win1, err := c.QuerySources(NewQuery().TopK(10).Build())
	if err != nil {
		t.Fatal(err)
	}

	// No newer round: the long-poll drains its wait and answers empty.
	rec := apiGet(t, h, "/api/v1/watch?since=1&k=10&wait=30ms", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("idle watch: status %d", rec.Code)
	}
	var idle apiserve.WatchEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &idle); err != nil {
		t.Fatal(err)
	}
	if idle.Since != 1 || idle.Snapshot != 1 || idle.Count != 0 {
		t.Fatalf("idle envelope %+v", idle)
	}

	c.Advance(30, 1830)
	win2, err := c.QuerySources(NewQuery().TopK(10).Build())
	if err != nil {
		t.Fatal(err)
	}

	rec = apiGet(t, h, "/api/v1/watch?since=1&k=10", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("watch: status %d: %s", rec.Code, rec.Body.String())
	}
	var env apiserve.WatchEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Since != 1 || env.Snapshot != 2 {
		t.Fatalf("envelope %+v", env)
	}
	want := apiserve.ChangeItems(DiffWindows(win1.Items, win2.Items))
	if !reflect.DeepEqual(env.Changes, want) {
		t.Fatalf("watch delta diverges from DiffWindows:\n got  %+v\n want %+v", env.Changes, want)
	}

	// A long-poll parked on round 2 wakes when Advance publishes round 3.
	done := make(chan apiserve.WatchEnvelope, 1)
	go func() {
		rec := apiGet(t, h, "/api/v1/watch?since=2&k=10&wait=10s", nil)
		var env apiserve.WatchEnvelope
		json.Unmarshal(rec.Body.Bytes(), &env)
		done <- env
	}()
	time.Sleep(20 * time.Millisecond)
	c.Advance(15, 1831)
	select {
	case env := <-done:
		if env.Snapshot != 3 {
			t.Fatalf("woken watch answered round %d, want 3", env.Snapshot)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("watch long-poll never woke on Advance")
	}

	// Age round 1 out of the ring: its since-token turns 410.
	for i := 0; i < 10; i++ {
		c.Advance(1, int64(1840+i))
		apiGet(t, h, "/api/v1/sources?limit=1", nil)
	}
	if rec := apiGet(t, h, "/api/v1/watch?since=1&k=10", nil); rec.Code != http.StatusGone {
		t.Fatalf("aged since: status %d, want 410", rec.Code)
	}
}

// fetchWindow reads one pinned top-k window over the wire and rebuilds the
// minimal assessments a DiffWindows needs. ok is false when the pin has
// aged out.
func fetchWindow(t *testing.T, h http.Handler, k int, snapshot int64) ([]*Assessment, bool) {
	t.Helper()
	rec := apiGet(t, h, fmt.Sprintf("/api/v1/sources?fields=scores&k=%d&snapshot=%d", k, snapshot), nil)
	if rec.Code == http.StatusGone {
		return nil, false
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("window fetch: status %d", rec.Code)
	}
	var env struct {
		Items []struct {
			ID    int     `json:"id"`
			Name  string  `json:"name"`
			Score float64 `json:"score"`
		} `json:"items"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	items := make([]*Assessment, len(env.Items))
	for i, it := range env.Items {
		items[i] = &Assessment{ID: it.ID, Name: it.Name, Score: it.Score}
	}
	return items, true
}

// TestAPIConcurrentCursorWalksAndWatchDuringAdvance extends the -race
// serving contract to the scale-out read paths: concurrent chained-cursor
// walks (no duplicates, no gaps, ranked order) and watch long-polls
// (every delta exactly reproducible from the two rounds' pinned windows)
// while a writer ticks the corpus.
func TestAPIConcurrentCursorWalksAndWatchDuringAdvance(t *testing.T) {
	c := New(Config{Seed: 185, NumSources: 30, NumUsers: 90, CommentText: true})
	h := c.APIHandler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	cursorWalker := func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ids, scores, _ := apiCursorWalk(t, h, 7)
			seen := map[int]bool{}
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate id %d in cursor walk", id)
					return
				}
				seen[id] = true
			}
			if len(ids) != 30 {
				t.Errorf("cursor walk returned %d sources, want 30 (gap or overrun)", len(ids))
				return
			}
			for i := 1; i < len(scores); i++ {
				if scores[i] > scores[i-1] {
					t.Errorf("cursor walk scores not ranked at %d", i)
					return
				}
			}
		}
	}
	watcher := func() {
		defer wg.Done()
		// Sync to the current round.
		rec := apiGet(t, h, "/api/v1/sources?limit=1", nil)
		var sync0 struct {
			Snapshot int64 `json:"snapshot"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &sync0); err != nil {
			t.Error(err)
			return
		}
		since := sync0.Snapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := apiGet(t, h, fmt.Sprintf("/api/v1/watch?since=%d&k=10&wait=150ms", since), nil)
			if rec.Code == http.StatusGone {
				// Fell too far behind the ring: re-sync.
				rec = apiGet(t, h, "/api/v1/sources?limit=1", nil)
				if err := json.Unmarshal(rec.Body.Bytes(), &sync0); err != nil {
					t.Error(err)
					return
				}
				since = sync0.Snapshot
				continue
			}
			if rec.Code != http.StatusOK {
				t.Errorf("watch: status %d: %s", rec.Code, rec.Body.String())
				return
			}
			var env apiserve.WatchEnvelope
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Error(err)
				return
			}
			if env.Snapshot > env.Since {
				// The delta must sum to the snapshot diff: recompute it
				// from the two rounds' pinned windows (skip when either
				// pin has already aged out).
				oldWin, ok1 := fetchWindow(t, h, 10, env.Since)
				newWin, ok2 := fetchWindow(t, h, 10, env.Snapshot)
				if ok1 && ok2 {
					want := apiserve.ChangeItems(DiffWindows(oldWin, newWin))
					if !reflect.DeepEqual(env.Changes, want) {
						t.Errorf("watch delta does not sum to the snapshot diff (%d -> %d):\n got  %+v\n want %+v",
							env.Since, env.Snapshot, env.Changes, want)
						return
					}
				}
			}
			since = env.Snapshot
		}
	}
	wg.Add(4)
	go cursorWalker()
	go cursorWalker()
	go watcher()
	go watcher()

	for i := 0; i < 5; i++ {
		time.Sleep(30 * time.Millisecond)
		c.Advance(2, int64(1850+i))
	}
	close(stop)
	wg.Wait()
}
