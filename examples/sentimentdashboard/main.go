// Sentimentdashboard: the paper's Figure 1 reproduced end to end. An
// end-user composition merges two data services (the Twitter-like and
// TripAdvisor-like sources), filters to influencers' contributions, scores
// sentiment, and displays everything in synchronised list/map/indicator
// viewers. Selecting an influencer in the list narrows the synced post
// viewers — the live interaction the DashMash platform demonstrated.
//
//	go run ./examples/sentimentdashboard
package main

import (
	"fmt"
	"os"

	informer "github.com/informing-observers/informer"
)

// composition is Figure 1 in the JSON composition DSL.
const composition = `{
  "name": "milan-tourism-sentiment",
  "components": [
    {"id": "twitter", "type": "comments", "params": {"kind": "social-network"}},
    {"id": "tripadvisor", "type": "comments", "params": {"kind": "review-site"}},
    {"id": "merge", "type": "union"},
    {"id": "inf", "type": "influencer-filter", "params": {"top": 8}},
    {"id": "infList", "type": "list-viewer", "title": "Influencers", "params": {"fields": ["name", "score"]}},
    {"id": "infMap", "type": "map-viewer", "title": "Influencer locations"},
    {"id": "postSel", "type": "event-filter", "params": {"item_key": "author_id", "payload_key": "author_id"}},
    {"id": "senti", "type": "sentiment"},
    {"id": "postList", "type": "list-viewer", "title": "Posts of selection", "params": {"fields": ["author", "category", "sentiment"]}},
    {"id": "postMap", "type": "map-viewer", "title": "Post locations"},
    {"id": "ind", "type": "indicator-viewer", "title": "Sentiment by category"}
  ],
  "wires": [
    {"from": "twitter.out", "to": "merge.a"},
    {"from": "tripadvisor.out", "to": "merge.b"},
    {"from": "merge.out", "to": "inf.in"},
    {"from": "inf.influencers", "to": "infList.in"},
    {"from": "inf.influencers", "to": "infMap.in"},
    {"from": "inf.out", "to": "postSel.in"},
    {"from": "postSel.out", "to": "senti.in"},
    {"from": "senti.out", "to": "postList.in"},
    {"from": "senti.out", "to": "postMap.in"},
    {"from": "senti.indicators", "to": "ind.in"}
  ],
  "sync": [
    {"source": "infList", "event": "select", "target": "postSel"}
  ]
}`

func main() {
	c := informer.New(informer.Config{Seed: 99, NumSources: 120, CommentText: true})

	rt, err := c.NewMashup([]byte(composition))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dash, err := rt.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(dash.Render())

	// Simulate the user clicking the first influencer in the list.
	infList, _ := dash.View("infList")
	if len(infList.Items) == 0 {
		fmt.Println("no influencers detected")
		return
	}
	selected := infList.Items[0]
	fmt.Printf("\n>>> selecting influencer %v — synced viewers refresh:\n\n", selected["name"])
	dash, err = informer.EmitSelect(rt, "infList", selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(dash.Render())
}
