// Influencers: the contributor model of Table 2 and the spam-resistance
// argument of Section 3.2. Generates a corpus with injected spam bots,
// then contrasts the naive activity-volume influencer ranking with the
// paper's combined absolute x relative strategy.
//
//	go run ./examples/influencers
package main

import (
	"fmt"

	informer "github.com/informing-observers/informer"
)

func main() {
	// 20% of users behave like spam bots: huge posting volume, no
	// reactions from anyone.
	c := informer.New(informer.Config{
		Seed:       11,
		NumSources: 80,
		NumUsers:   300,
		SpamRate:   0.2,
	})

	show := func(title string, infs []informer.Influencer) {
		fmt.Println(title)
		spam := 0
		for i, inf := range infs {
			tag := ""
			if inf.Record.Spammer {
				tag = "  <-- SPAM BOT"
				spam++
			}
			fmt.Printf("%3d. %-28s influence %.3f  interactions %4d  replies %4d%s\n",
				i+1, inf.Record.Name, inf.InfluenceScore,
				inf.Record.Interactions, inf.Record.RepliesReceived, tag)
		}
		fmt.Printf("     -> %d/%d spam bots in the top list\n\n", spam, len(infs))
	}

	show("Naive ranking by absolute activity volume:",
		c.Influencers(informer.InfluencerOptions{Strategy: informer.ByActivity, TopK: 10}))

	show("The paper's combined strategy (absolute x relative):",
		c.Influencers(informer.InfluencerOptions{Strategy: informer.Combined, TopK: 10}))

	// The microblog path: the Table 4 dataset assessed with Table 2
	// measures.
	ds, records := informer.GenerateMicroblog(informer.MicroblogConfig{Seed: 3, NumAccounts: 813})
	ranked := informer.AssessMicroblog(records)
	fmt.Println("Top microblog accounts by Table 2 overall quality:")
	for i, a := range ranked {
		if i >= 8 {
			break
		}
		kind := ds.Accounts[a.ID].Kind
		fmt.Printf("%3d. %-28s score %.3f  (%s)\n", i+1, a.Name, a.Score, kind)
	}
}
