// Monitoring: the paper's motivating scenario — continuous market
// monitoring over evolving Web 2.0 sources. Assess a corpus, archive the
// ranking as a JSON report, subscribe a standing quality-filtered window
// (the in-process form of the /api/v1/watch and /api/v1/stream
// observers), let a month of activity arrive, and receive the tick's
// delta — only the rows that entered, left or moved, evaluated once
// however many observers share the query — alongside the full
// ranking diff; finally extract the buzz words of a category (the
// Section 5 "buzz word identification" analysis service).
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"sort"

	informer "github.com/informing-observers/informer"
)

func main() {
	c := informer.New(informer.Config{Seed: 81, NumSources: 50, CommentText: true})

	before := c.SourceReport()
	fmt.Printf("assessment round 1 (%s): %d sources, leader %q (%.3f)\n",
		before.GeneratedAt.Format("2006-01-02"),
		len(before.Entries), before.Entries[0].Name, before.Entries[0].Score)

	// A standing observer query: the top-10 sources clearing a quality
	// bar. Subscribing registers it with the corpus' subscription
	// registry — the same registry the /api/v1/watch and /api/v1/stream
	// transports fan out of — so the next Advance will deliver this
	// window's delta, evaluated once per tick no matter how many
	// observers share the query.
	watchQuery := informer.NewQuery().MinScore(0.4).TopK(10).ScoresOnly().Build()
	sub, err := c.Subscribe(watchQuery)
	if err != nil {
		panic(err)
	}
	defer sub.Close()
	fmt.Printf("subscribed to the standing top-10 window at snapshot %d (%d rows)\n",
		sub.Since(), len(sub.Window()))

	// A month of fresh discussions and comments arrives; re-assessment is
	// incremental — only the sources the month touched are re-evaluated —
	// and readers could keep being served throughout the tick.
	c = c.Advance(30, 811)
	delta := c.LastDelta()
	fmt.Printf("the month touched %d of %d sources (%d new discussions, %d new comments)\n",
		len(delta.DirtySourceIDs()), len(c.SourceRecords()),
		len(delta.Discussions), delta.NewCommentCount())

	after := c.SourceReport()
	fmt.Printf("assessment round 2 (%s): leader %q (%.3f)\n\n",
		after.GeneratedAt.Format("2006-01-02"),
		after.Entries[0].Name, after.Entries[0].Score)

	// Who moved?
	shift := informer.RankShift(before, after)
	type mover struct {
		name string
		d    int
	}
	var movers []mover
	for name, d := range shift {
		if d != 0 {
			movers = append(movers, mover{name, d})
		}
	}
	sort.Slice(movers, func(i, j int) bool {
		abs := func(x int) int {
			if x < 0 {
				return -x
			}
			return x
		}
		if abs(movers[i].d) != abs(movers[j].d) {
			return abs(movers[i].d) > abs(movers[j].d)
		}
		return movers[i].name < movers[j].name
	})
	fmt.Printf("%d sources changed rank after one month; biggest movers:\n", len(movers))
	for i, m := range movers {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-30s %+d\n", m.name, m.d)
	}

	// The subscription already holds the tick's delta: Advance evaluated
	// the standing query once, diffed the two rounds' windows and fanned
	// the event out before returning — exactly the envelope
	// /api/v1/watch?since=1 or an /api/v1/stream frame would carry.
	ev := <-sub.Events()
	fmt.Printf("\nwatch delta of the standing top-10 window, rounds %d -> %d (%d changes):\n",
		ev.Since, ev.Snapshot, len(ev.Changes))
	for _, ch := range ev.Changes {
		switch ch.Event() {
		case "entered":
			fmt.Printf("  + %-28s entered at #%d (%.3f)\n", ch.Name, ch.NewRank, ch.Score)
		case "left":
			fmt.Printf("  - %-28s left (was #%d)\n", ch.Name, ch.OldRank)
		default:
			fmt.Printf("  ~ %-28s #%d -> #%d (%.3f)\n", ch.Name, ch.OldRank, ch.NewRank, ch.Score)
		}
	}

	// Buzz words of the 'prerequisites' category (hotels, transport...)
	// against the whole corpus.
	fmt.Println("\nbuzz words in the 'prerequisites' category:")
	for _, term := range c.TrendingTerms("prerequisites", 8) {
		fmt.Printf("  %-16s G2 %.1f  (fg %d / bg %d)\n", term.Word, term.Score, term.FgCount, term.BgCount)
	}
}
