// Monitoring: the paper's motivating scenario — continuous market
// monitoring over evolving Web 2.0 sources. Assess a corpus, archive the
// ranking as a JSON report, let a month of activity arrive, re-assess,
// and diff the two rankings; finally extract the buzz words of a category
// (the Section 5 "buzz word identification" analysis service).
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"sort"

	informer "github.com/informing-observers/informer"
)

func main() {
	c := informer.New(informer.Config{Seed: 81, NumSources: 50, CommentText: true})

	before := c.SourceReport()
	fmt.Printf("assessment round 1 (%s): %d sources, leader %q (%.3f)\n",
		before.GeneratedAt.Format("2006-01-02"),
		len(before.Entries), before.Entries[0].Name, before.Entries[0].Score)

	// A month of fresh discussions and comments arrives; re-assessment is
	// incremental — only the sources the month touched are re-evaluated —
	// and readers could keep being served throughout the tick.
	c = c.Advance(30, 811)
	delta := c.LastDelta()
	fmt.Printf("the month touched %d of %d sources (%d new discussions, %d new comments)\n",
		len(delta.DirtySourceIDs()), len(c.SourceRecords()),
		len(delta.Discussions), delta.NewCommentCount())

	after := c.SourceReport()
	fmt.Printf("assessment round 2 (%s): leader %q (%.3f)\n\n",
		after.GeneratedAt.Format("2006-01-02"),
		after.Entries[0].Name, after.Entries[0].Score)

	// Who moved?
	shift := informer.RankShift(before, after)
	type mover struct {
		name string
		d    int
	}
	var movers []mover
	for name, d := range shift {
		if d != 0 {
			movers = append(movers, mover{name, d})
		}
	}
	sort.Slice(movers, func(i, j int) bool {
		abs := func(x int) int {
			if x < 0 {
				return -x
			}
			return x
		}
		if abs(movers[i].d) != abs(movers[j].d) {
			return abs(movers[i].d) > abs(movers[j].d)
		}
		return movers[i].name < movers[j].name
	})
	fmt.Printf("%d sources changed rank after one month; biggest movers:\n", len(movers))
	for i, m := range movers {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-30s %+d\n", m.name, m.d)
	}

	// Buzz words of the 'prerequisites' category (hotels, transport...)
	// against the whole corpus.
	fmt.Println("\nbuzz words in the 'prerequisites' category:")
	for _, term := range c.TrendingTerms("prerequisites", 8) {
		fmt.Printf("  %-16s G2 %.1f  (fg %d / bg %d)\n", term.Word, term.Score, term.FgCount, term.BgCount)
	}
}
