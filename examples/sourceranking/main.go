// Sourceranking: the Section 4.1 story at laptop scale. Query the built-in
// search-engine baseline (the Google stand-in), then re-rank its results
// with the quality model and compare the two orderings. The re-ranking is
// one ID-scoped quality query: the result set becomes the query's scope
// and the assessor ranks exactly those sources.
//
//	go run ./examples/sourceranking
package main

import (
	"fmt"

	informer "github.com/informing-observers/informer"
)

func main() {
	c := informer.New(informer.Config{Seed: 7, NumSources: 300})

	query := "museum hotel milan"
	results := c.Search(query, 15)
	if len(results) == 0 {
		fmt.Println("no results; try another seed")
		return
	}
	fmt.Printf("baseline search results for %q:\n", query)

	// Quality re-ranking of the same result list: scope a query to the
	// searched IDs and let the assessor rank them.
	ids := make([]int, len(results))
	for i, r := range results {
		ids[i] = r.SourceID
	}
	reranked, err := c.QuerySources(informer.NewQuery().IDs(ids...).ScoresOnly().Build())
	if err != nil {
		panic(err)
	}

	type row struct {
		name                string
		basePos, qualityPos int
		quality             float64
	}
	rows := make([]row, 0, len(results))
	posByID := map[int]int{}
	for pos, a := range reranked.Items {
		posByID[a.ID] = pos + 1
	}
	for i, r := range results {
		a, _ := c.AssessSource(r.SourceID)
		rows = append(rows, row{name: a.Name, basePos: i + 1, qualityPos: posByID[r.SourceID], quality: a.Score})
	}

	fmt.Printf("%-28s %9s %12s %9s %10s\n", "source", "base pos", "quality pos", "moved", "quality")
	var totalDist int
	for _, r := range rows {
		d := r.basePos - r.qualityPos
		if d < 0 {
			d = -d
		}
		totalDist += d
		fmt.Printf("%-28s %9d %12d %9d %10.3f\n", r.name, r.basePos, r.qualityPos, d, r.quality)
	}
	fmt.Printf("\nmean position distance: %.2f (the paper reports ~4 on its 100-query workload)\n",
		float64(totalDist)/float64(len(rows)))
}
