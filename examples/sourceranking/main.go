// Sourceranking: the Section 4.1 story at laptop scale. Query the built-in
// search-engine baseline (the Google stand-in), then re-rank its results
// with the quality model and compare the two orderings.
//
//	go run ./examples/sourceranking
package main

import (
	"fmt"
	"sort"

	informer "github.com/informing-observers/informer"
)

func main() {
	c := informer.New(informer.Config{Seed: 7, NumSources: 300})

	query := "museum hotel milan"
	results := c.Search(query, 15)
	if len(results) == 0 {
		fmt.Println("no results; try another seed")
		return
	}
	fmt.Printf("baseline search results for %q:\n", query)

	type row struct {
		name                string
		basePos, qualityPos int
		quality             float64
	}
	rows := make([]row, 0, len(results))
	for i, r := range results {
		a, _ := c.AssessSource(r.SourceID)
		rows = append(rows, row{name: a.Name, basePos: i + 1, quality: a.Score})
	}
	// Quality re-ranking of the same result list.
	byQuality := make([]int, len(rows))
	for i := range byQuality {
		byQuality[i] = i
	}
	sort.SliceStable(byQuality, func(a, b int) bool {
		return rows[byQuality[a]].quality > rows[byQuality[b]].quality
	})
	for pos, idx := range byQuality {
		rows[idx].qualityPos = pos + 1
	}

	fmt.Printf("%-28s %9s %12s %9s %10s\n", "source", "base pos", "quality pos", "moved", "quality")
	var totalDist int
	for _, r := range rows {
		d := r.basePos - r.qualityPos
		if d < 0 {
			d = -d
		}
		totalDist += d
		fmt.Printf("%-28s %9d %12d %9d %10.3f\n", r.name, r.basePos, r.qualityPos, d, r.quality)
	}
	fmt.Printf("\nmean position distance: %.2f (the paper reports ~4 on its 100-query workload)\n",
		float64(totalDist)/float64(len(rows)))
}
