// Quickstart: generate a synthetic Web 2.0 corpus, assess every source
// against the paper's quality model (Table 1), and consume the ranking
// through the composable query API — the filters run below the ranking,
// so asking for ten sources never materializes sixty assessments.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	informer "github.com/informing-observers/informer"
)

func main() {
	// A deterministic corpus: 60 sources (blogs, forums, review sites,
	// social networks), 120 contributors, full comment text.
	c := informer.New(informer.Config{
		Seed:        2024,
		NumSources:  60,
		CommentText: true,
	})

	// Top-k selection through the fluent query builder.
	top, _ := c.QuerySources(informer.NewQuery().TopK(10).Build())
	fmt.Println("Top 10 sources by overall quality score:")
	for i, a := range top.Items {
		fmt.Printf("%3d. %-30s score %.3f\n", i+1, a.Name, a.Score)
	}

	// Composable predicates: authoritative blogs only, ranked by the time
	// dimension (freshness/liveliness of their content).
	fresh, _ := c.QuerySources(informer.NewQuery().
		Kinds("blog").
		MinDimension(informer.Authority, 0.4).
		SortByDimension(informer.Time).
		TopK(5).
		Build())
	fmt.Printf("\n%d blogs clear the authority bar; the 5 freshest:\n", fresh.Total)
	for i, a := range fresh.Items {
		fmt.Printf("%3d. %-30s time %.3f  overall %.3f\n",
			i+1, a.Name, a.DimensionScores[informer.Time], a.Score)
	}

	// Inspect one assessment in depth: per-dimension and per-attribute
	// scores are the orthogonal axes end users filter on (Section 5).
	best := top.Items[0]
	fmt.Printf("\nDimension scores of %q:\n", best.Name)
	for dim, v := range best.DimensionScores {
		fmt.Printf("  %-18s %.3f\n", dim, v)
	}

	// Quality-weighted sentiment per content category (Section 6).
	fmt.Println("\nQuality-weighted sentiment indicators:")
	for cat, ind := range c.SentimentByCategory() {
		fmt.Printf("  %-15s %+.3f  (%d comments)\n", cat, ind.Mean, ind.N)
	}
}
