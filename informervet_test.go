package informer

import (
	"os/exec"
	"strings"
	"testing"
)

// TestInformerVetClean pins the invariant DESIGN.md section 12 promises:
// the shipped tree carries zero informer-vet findings, so every
// diagnostic a contributor sees is one they introduced. The analyzers
// themselves are proven live (not accidentally inert) by the seeded-bad
// fixtures under internal/analysis/*/testdata.
func TestInformerVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("informer-vet type-checks the whole module; skipped under -short")
	}
	out, err := exec.Command("go", "run", "./cmd/informer-vet", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("informer-vet reported findings on the shipped tree:\n%s", out)
	}
}

// TestInformerVetList smoke-tests the multichecker's -list flag and the
// analyzer roster it advertises.
func TestInformerVetList(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool; skipped under -short")
	}
	out, err := exec.Command("go", "run", "./cmd/informer-vet", "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("informer-vet -list: %v\n%s", err, out)
	}
	for _, name := range []string{"snapshotsafe", "detrand", "chanhygiene", "errdrop", "mdref"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("informer-vet -list output missing analyzer %q:\n%s", name, out)
		}
	}
}
