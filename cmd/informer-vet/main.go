// Command informer-vet is the project's multichecker (DESIGN.md
// section 12): it loads the module's packages and runs the
// internal/analysis suite — snapshotsafe, detrand, chanhygiene,
// errdrop, mdref — printing one line per finding and exiting nonzero
// if anything fires. CI runs it as a required step; run it locally with
//
//	go run ./cmd/informer-vet ./...
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/informing-observers/informer/internal/analysis"
	"github.com/informing-observers/informer/internal/analysis/kit"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("informer-vet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "directory of the module to vet")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := kit.LoadModule(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "informer-vet:", err)
		return 2
	}
	diags, err := kit.Run(mod, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "informer-vet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(kit.DiagString(mod.Fset, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "informer-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
