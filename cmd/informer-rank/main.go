// Command informer-rank generates (or crawls) a Web 2.0 corpus and prints
// quality rankings of its sources and contributors:
//
//	informer-rank -sources 100 -top 15
//	informer-rank -crawl http://127.0.0.1:8080 -top 10
//	informer-rank -show 3            # full Table 1 assessment of source 3
//	informer-rank -influencers 10    # top opinion leaders
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	informer "github.com/informing-observers/informer"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "corpus seed")
		sources     = flag.Int("sources", 100, "number of sources to generate")
		users       = flag.Int("users", 0, "number of users (default 2x sources)")
		top         = flag.Int("top", 10, "how many ranked entries to print")
		show        = flag.Int("show", -1, "print the full assessment of this source ID")
		influencers = flag.Int("influencers", 0, "print the top-N influencers")
		crawl       = flag.String("crawl", "", "crawl this base URL instead of assessing in memory")
		reportPath  = flag.String("report", "", "write the full ranking as a JSON report to this file")
	)
	flag.Parse()

	c := informer.New(informer.Config{
		Seed:        *seed,
		NumSources:  *sources,
		NumUsers:    *users,
		CommentText: true,
	})

	var ranked []*informer.Assessment
	if *crawl != "" {
		records, err := c.Crawl(context.Background(), *crawl, informer.CrawlOptions{FetchFeeds: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "informer-rank:", err)
			os.Exit(1)
		}
		ranked = c.AssessRecords(records)
		fmt.Printf("crawled %d sources from %s\n\n", len(records), *crawl)
	} else {
		ranked = c.RankSources()
	}

	fmt.Printf("top %d sources by overall quality:\n", *top)
	fmt.Printf("%4s  %-28s %7s  %s\n", "rank", "source", "score", "strongest dimension")
	for i, a := range ranked {
		if i >= *top {
			break
		}
		fmt.Printf("%4d  %-28s %7.3f  %s\n", i+1, a.Name, a.Score, bestDimension(a))
	}

	if *show >= 0 {
		a, ok := c.AssessSource(*show)
		if !ok {
			fmt.Fprintf(os.Stderr, "informer-rank: no source %d\n", *show)
			os.Exit(1)
		}
		fmt.Printf("\nfull assessment of source %d (%s), score %.3f:\n", a.ID, a.Name, a.Score)
		ids := make([]string, 0, len(a.Raw))
		for id := range a.Raw {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("  %-38s raw %12.3f   normalized %6.3f\n", id, a.Raw[id], a.Normalized[id])
		}
	}

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "informer-rank:", err)
			os.Exit(1)
		}
		if err := c.SourceReport().WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "informer-rank:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nreport written to %s\n", *reportPath)
	}

	if *influencers > 0 {
		infs := c.Influencers(informer.InfluencerOptions{
			Strategy: informer.Combined,
			TopK:     *influencers,
		})
		fmt.Printf("\ntop %d influencers (combined absolute x relative strategy):\n", *influencers)
		for i, inf := range infs {
			fmt.Printf("%4d  %-28s influence %6.3f  interactions %5d  replies %5d\n",
				i+1, inf.Record.Name, inf.InfluenceScore, inf.Record.Interactions, inf.Record.RepliesReceived)
		}
	}
}

// bestDimension names the dimension with the highest score.
func bestDimension(a *informer.Assessment) string {
	best, bestV := "", -1.0
	for d, v := range a.DimensionScores {
		if v > bestV {
			bestV = v
			best = d.String()
		}
	}
	return fmt.Sprintf("%s (%.2f)", best, bestV)
}
