// Command informer-rank generates (or crawls) a Web 2.0 corpus and prints
// quality rankings of its sources and contributors through the composable
// query API — filters execute below the ranking, so -top never assesses
// more than it prints:
//
//	informer-rank -sources 100 -top 15
//	informer-rank -min-score 0.6 -category place -top 10
//	informer-rank -sort dim.time -top 10      # rank by the time dimension
//	informer-rank -crawl http://127.0.0.1:8080 -top 10
//	informer-rank -show 3            # full Table 1 assessment of source 3
//	informer-rank -influencers 10    # top opinion leaders
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	informer "github.com/informing-observers/informer"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "corpus seed")
		sources     = flag.Int("sources", 100, "number of sources to generate")
		users       = flag.Int("users", 0, "number of users (default 2x sources)")
		top         = flag.Int("top", 10, "how many ranked entries to print")
		minScore    = flag.Float64("min-score", 0, "only sources whose overall score clears this bar")
		category    = flag.String("category", "", "only sources active in this content category")
		kind        = flag.String("kind", "", "only sources of this kind (blog, forum, review-site, social-network)")
		sortAxis    = flag.String("sort", "score", "ranking axis: score, dim.<dimension> or att.<attribute>")
		show        = flag.Int("show", -1, "print the full assessment of this source ID")
		influencers = flag.Int("influencers", 0, "print the top-N influencers")
		crawl       = flag.String("crawl", "", "crawl this base URL instead of assessing in memory")
		reportPath  = flag.String("report", "", "write the full ranking as a JSON report to this file")
	)
	flag.Parse()

	c := informer.New(informer.Config{
		Seed:        *seed,
		NumSources:  *sources,
		NumUsers:    *users,
		CommentText: true,
	})

	// Compose the declarative query once; it runs identically against the
	// in-memory corpus or externally crawled records.
	qb := informer.NewQuery().TopK(*top).MinScore(*minScore)
	if *category != "" {
		qb.Categories(*category)
	}
	if *kind != "" {
		qb.Kinds(*kind)
	}
	switch {
	case *sortAxis == "" || *sortAxis == "score":
	case strings.HasPrefix(*sortAxis, "dim."):
		d, ok := informer.ParseDimension(strings.TrimPrefix(*sortAxis, "dim."))
		if !ok {
			fmt.Fprintf(os.Stderr, "informer-rank: unknown dimension in -sort %q\n", *sortAxis)
			os.Exit(1)
		}
		qb.SortByDimension(d)
	case strings.HasPrefix(*sortAxis, "att."):
		at, ok := informer.ParseAttribute(strings.TrimPrefix(*sortAxis, "att."))
		if !ok {
			fmt.Fprintf(os.Stderr, "informer-rank: unknown attribute in -sort %q\n", *sortAxis)
			os.Exit(1)
		}
		qb.SortByAttribute(at)
	default:
		fmt.Fprintf(os.Stderr, "informer-rank: bad -sort %q\n", *sortAxis)
		os.Exit(1)
	}
	q := qb.Build()

	var res *informer.QueryResult
	var err error
	if *crawl != "" {
		records, cerr := c.Crawl(context.Background(), *crawl, informer.CrawlOptions{FetchFeeds: true})
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "informer-rank:", cerr)
			os.Exit(1)
		}
		res, err = informer.QueryRecords(records, c.DI, q)
		if err == nil {
			fmt.Printf("crawled %d sources from %s\n\n", len(records), *crawl)
		}
	} else {
		res, err = c.QuerySources(q)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "informer-rank:", err)
		os.Exit(1)
	}

	fmt.Printf("top %d of %d matching sources (sort: %s):\n", len(res.Items), res.Total, *sortAxis)
	fmt.Printf("%4s  %-28s %7s  %s\n", "rank", "source", "score", "strongest dimension")
	for i, a := range res.Items {
		fmt.Printf("%4d  %-28s %7.3f  %s\n", i+1, a.Name, a.Score, bestDimension(a))
	}

	if *show >= 0 {
		a, ok := c.AssessSource(*show)
		if !ok {
			fmt.Fprintf(os.Stderr, "informer-rank: no source %d\n", *show)
			os.Exit(1)
		}
		fmt.Printf("\nfull assessment of source %d (%s), score %.3f:\n", a.ID, a.Name, a.Score)
		ids := make([]string, 0, len(a.Raw))
		for id := range a.Raw {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("  %-38s raw %12.3f   normalized %6.3f\n", id, a.Raw[id], a.Normalized[id])
		}
	}

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "informer-rank:", err)
			os.Exit(1)
		}
		if err := c.SourceReport().WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "informer-rank:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nreport written to %s\n", *reportPath)
	}

	if *influencers > 0 {
		infs := c.Influencers(informer.InfluencerOptions{
			Strategy: informer.Combined,
			TopK:     *influencers,
		})
		fmt.Printf("\ntop %d influencers (combined absolute x relative strategy):\n", *influencers)
		for i, inf := range infs {
			fmt.Printf("%4d  %-28s influence %6.3f  interactions %5d  replies %5d\n",
				i+1, inf.Record.Name, inf.InfluenceScore, inf.Record.Interactions, inf.Record.RepliesReceived)
		}
	}
}

// bestDimension names the dimension with the highest score.
func bestDimension(a *informer.Assessment) string {
	best, bestV := "", -1.0
	for d, v := range a.DimensionScores {
		if v > bestV {
			bestV = v
			best = d.String()
		}
	}
	return fmt.Sprintf("%s (%.2f)", best, bestV)
}
