// Command informer-serve exposes a generated Web 2.0 corpus over HTTP —
// per-source pages, discussion pages with embedded data islands, RSS/Atom
// feeds and a sitemap — plus the analytics panel as a JSON API, so the
// crawler (or informer-rank -crawl) can walk it like the live Web, and the
// versioned quality-query API under /api/v1 (sources, contributors,
// influencers, sentiment, trending, search) for remote observers:
//
//	informer-serve -addr 127.0.0.1:8080 -sources 60
//	informer-rank  -crawl http://127.0.0.1:8080
//	curl 'http://127.0.0.1:8080/api/v1/sources?min_score=0.6&k=10'
//
// With -tick-days > 0 the corpus advances on a timer (the monitoring
// scenario): /api/v1 responses then carry moving snapshot tokens, and
// clients pinning ?snapshot=N keep reading one coherent assessment round.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	informer "github.com/informing-observers/informer"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		seed     = flag.Int64("seed", 1, "corpus seed")
		sources  = flag.Int("sources", 60, "number of sources")
		tickDays = flag.Int("tick-days", 0, "advance the corpus by this many days per tick (0 = static)")
		tickWait = flag.Duration("tick-every", 30*time.Second, "wall-clock interval between ticks")
	)
	flag.Parse()

	c := informer.New(informer.Config{Seed: *seed, NumSources: *sources, CommentText: true})
	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	mux.Handle("/panel/", http.StripPrefix("/panel", c.PanelHandler()))
	mux.Handle("/api/v1/", c.APIHandler())

	if *tickDays > 0 {
		go func() {
			for tick := int64(1); ; tick++ {
				time.Sleep(*tickWait)
				c.Advance(*tickDays, *seed+tick)
				fmt.Printf("tick: +%dd, snapshot %d, %d dirty sources\n",
					*tickDays, c.SnapshotVersion(), len(c.LastDelta().DirtySourceIDs()))
			}
		}()
	}

	fmt.Printf("serving %d sources on http://%s\n", *sources, *addr)
	fmt.Printf("  crawlable world: /sitemap.txt   panel: /panel/metrics?host=...\n")
	fmt.Printf("  quality API:     /api/v1/sources?min_score=0.6&k=10 (snapshot %d)\n", c.SnapshotVersion())
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "informer-serve:", err)
		os.Exit(1)
	}
}
