// Command informer-serve exposes a generated Web 2.0 corpus over HTTP —
// per-source pages, discussion pages with embedded data islands, RSS/Atom
// feeds and a sitemap — plus the analytics panel as a JSON API, so the
// crawler (or informer-rank -crawl) can walk it like the live Web, and the
// versioned quality-query API under /api/v1 (sources, contributors,
// influencers, sentiment, trending, search, watch, stream, sinks) for
// remote observers:
//
//	informer-serve -addr 127.0.0.1:8080 -sources 60
//	informer-rank  -crawl http://127.0.0.1:8080
//	curl 'http://127.0.0.1:8080/api/v1/sources?min_score=0.6&k=10'
//	curl 'http://127.0.0.1:8080/api/v1/sources?limit=20&cursor=<next_cursor>'
//	curl -N 'http://127.0.0.1:8080/api/v1/stream?since=1&min_score=0.5&k=10'
//
// With -tick-days > 0 the corpus advances on a timer (the monitoring
// scenario): /api/v1 responses then carry moving snapshot tokens, clients
// pinning ?snapshot=N keep reading one coherent assessment round, and the
// standing-query transports deliver each tick's rank movement — one
// /api/v1/watch long-poll per tick, or every tick over one /api/v1/stream
// SSE connection. -watch runs a built-in observer against the served
// stream endpoint and prints the deltas:
//
//	informer-serve -tick-days 7 -tick-every 5s -watch 'min_score=0.5&k=10'
//
// -ingest replaces that lockstep with continuous adaptive ingestion: every
// source is polled on its own schedule (hot sources converge to -poll-min,
// the quiet tail backs off to -poll-max), each poll's delta folds into a
// pending-delta accumulator without publishing, and a drain policy
// (-ingest-drain-ticks / -ingest-drain-age) decides when the buffered
// ticks coalesce into ONE published assessment round — one UpdateRows
// repair, one watch/stream/sink fan-out, however many polls were folded:
//
//	informer-serve -ingest -poll-min 250ms -poll-max 30s -ingest-drain-ticks 12
//
// -sink attaches a push sink at startup: each tick's delta is POSTed to
// the webhook through the delivery engine (bounded queue with coalescing,
// retries with backoff, circuit breaker, eviction); more sinks can be
// managed live over POST /api/v1/sinks:
//
//	informer-serve -tick-days 7 -sink http://127.0.0.1:9000/hook -sink-query 'k=10&changes=entered'
//
// The server itself is production-shaped: header/read/idle timeouts, a
// write timeout the streaming handlers exempt themselves from, and
// graceful degradation on SIGINT/SIGTERM — pending sink deliveries flush
// within -drain, open SSE streams receive a terminal resync frame, and
// in-flight requests complete before the listener closes.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	informer "github.com/informing-observers/informer"
	"github.com/informing-observers/informer/internal/ingest"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "informer-serve:", err)
		os.Exit(1)
	}
}

// run is the whole server lifecycle, factored out of main so the e2e test
// can boot and stop a real instance in-process. It returns once the
// context is cancelled (signal) and the server has degraded gracefully.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("informer-serve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (use port 0 for an ephemeral port)")
		seed      = fs.Int64("seed", 1, "corpus seed")
		sources   = fs.Int("sources", 60, "number of sources")
		tickDays  = fs.Int("tick-days", 0, "advance the corpus by this many days per tick (0 = static)")
		tickWait  = fs.Duration("tick-every", 30*time.Second, "wall-clock interval between ticks")
		ingestOn  = fs.Bool("ingest", false, "continuous adaptive ingestion: poll each source on its own activity-driven schedule, coalesce the deltas, publish one assessment round per drain (replaces the -tick-days lockstep)")
		pollMin   = fs.Duration("poll-min", 250*time.Millisecond, "-ingest: poll interval hot sources converge to")
		pollMax   = fs.Duration("poll-max", 30*time.Second, "-ingest: poll interval the quiet tail backs off to")
		drainMax  = fs.Int("ingest-drain-ticks", 12, "-ingest: publish a round once this many active polls are buffered")
		drainAge  = fs.Duration("ingest-drain-age", 2*time.Second, "-ingest: publish a round once the oldest buffered poll is this stale")
		watchQ    = fs.String("watch", "", "demo observer: consume /api/v1/stream with this query string (e.g. 'min_score=0.5&k=10') and print rank movement per tick")
		sinkURL   = fs.String("sink", "", "attach a webhook push sink: POST each tick's delta envelope to this URL")
		sinkQuery = fs.String("sink-query", "k=10", "standing query of the -sink webhook, in /api/v1/watch query-string form (delta filters included)")
		drain     = fs.Duration("drain", 5*time.Second, "graceful-shutdown budget for flushing pending sink deliveries")
		syndicate = fs.Float64("syndication", 0, "fraction of comments syndicated from other sources (0..1); feeds the correlation engine behind /api/v1/stories")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c := informer.New(informer.Config{Seed: *seed, NumSources: *sources, CommentText: true, SyndicationRate: *syndicate})
	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	mux.Handle("/panel/", http.StripPrefix("/panel", c.PanelHandler()))
	mux.Handle("/api/v1/", c.APIHandler())

	if *sinkURL != "" {
		id, err := registerSink(c, *sinkURL, *sinkQuery)
		if err != nil {
			return fmt.Errorf("-sink: %w", err)
		}
		fmt.Fprintf(out, "push sink %s -> %s (%q)\n", id, *sinkURL, *sinkQuery)
	}

	// The advancement loop — lockstep ticks or adaptive ingestion — owns
	// all corpus writes. loopDone closes when it has fully stopped: the
	// shutdown path waits on it BEFORE Corpus.Shutdown closes the
	// subscription registry, so a tick landing during SIGTERM drain can
	// never publish into a closing fan-out.
	loopDone := make(chan struct{})
	switch {
	case *ingestOn && *tickDays > 0:
		return fmt.Errorf("-ingest replaces the -tick-days/-tick-every lockstep; pick one")
	case *ingestOn:
		go func() {
			defer close(loopDone)
			ingestLoop(ctx, c, out, *seed, ingest.SchedulerConfig{Min: *pollMin, Max: *pollMax},
				ingest.DrainPolicy{MaxPendingTicks: *drainMax, MaxAge: *drainAge})
		}()
	case *tickDays > 0:
		go func() {
			defer close(loopDone)
			tickLoop(ctx, c, out, *tickDays, *seed, *tickWait)
		}()
	default:
		close(loopDone)
	}

	// Bind before announcing, so ephemeral ports (-addr 127.0.0.1:0) print
	// the resolved address a client can actually reach.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	real := ln.Addr().String()
	if *watchQ != "" {
		go watchLoop("http://"+real, *watchQ)
	}

	fmt.Fprintf(out, "serving %d sources on http://%s\n", *sources, real)
	fmt.Fprintf(out, "  crawlable world: /sitemap.txt   panel: /panel/metrics?host=...\n")
	fmt.Fprintf(out, "  quality API:     /api/v1/sources?min_score=0.6&k=10 (snapshot %d)\n", c.SnapshotVersion())
	fmt.Fprintf(out, "  watch feed:      /api/v1/watch?since=%d&k=10\n", c.SnapshotVersion())
	fmt.Fprintf(out, "  SSE stream:      /api/v1/stream?since=%d&k=10\n", c.SnapshotVersion())
	fmt.Fprintf(out, "  push sinks:      POST /api/v1/sinks {\"url\":..., \"query\":...}\n")

	// Production-shaped timeouts. WriteTimeout would sever streams and
	// parked long-polls, so those handlers push their own per-connection
	// write deadlines (http.NewResponseController) past it; everything
	// else gets the bound.
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err // listener failed outright
	case <-ctx.Done():
	}

	// Graceful degradation, in dependency order: stop the advancement
	// loop first (its final drain publishes into a still-open registry),
	// then flush pending sink deliveries within the drain budget and close
	// the standing-query fan-out (open SSE streams get their terminal
	// resync frame, parked long-polls return), then drain in-flight
	// requests off the listener.
	<-loopDone
	fmt.Fprintf(out, "shutting down: flushing sinks (budget %s), closing streams\n", *drain)
	flushCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := c.Shutdown(flushCtx); err != nil {
		fmt.Fprintf(out, "shutdown: sink flush cut short: %v\n", err)
	}
	stopCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := srv.Shutdown(stopCtx); err != nil {
		return err
	}
	<-errCh // Serve has returned http.ErrServerClosed
	fmt.Fprintln(out, "shutdown: done")
	return nil
}

// tickLoop is the -tick-days lockstep: one global Advance per wall-clock
// interval, each an immediately published assessment round.
func tickLoop(ctx context.Context, c *informer.Corpus, out io.Writer, days int, seed int64, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for tick := int64(1); ; tick++ {
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return
		}
		c.Advance(days, seed+tick)
		fmt.Fprintf(out, "tick: +%dd, snapshot %d, %d dirty sources\n",
			days, c.SnapshotVersion(), len(c.LastDelta().DirtySourceIDs()))
	}
}

// ingestLoop is the -ingest continuous mode: an adaptive per-source
// scheduler decides which sources are worth polling each round (activity
// halves a source's interval toward cfg.Min, quiet polls back it off
// toward cfg.Max), every active poll folds into the corpus' pending-delta
// accumulator without publishing, and the drain policy turns the buffered
// span into one published assessment round. On shutdown it drains once
// more — run() waits for this loop to exit before closing the
// subscription registry, so the final publish lands in an open fan-out.
func ingestLoop(ctx context.Context, c *informer.Corpus, out io.Writer, seed int64, cfg ingest.SchedulerConfig, pol ingest.DrainPolicy) {
	ids := make([]int, 0, len(c.World().Sources))
	for _, s := range c.World().Sources {
		ids = append(ids, s.ID)
	}
	sched := ingest.NewScheduler(ids, time.Now(), cfg)
	var oldest time.Time // wall-clock age of the first buffered poll
	pollSeed := seed
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			if n, ok := c.DrainTick(); ok {
				fmt.Fprintf(out, "drain: %d coalesced polls -> snapshot %d (final)\n", n, c.SnapshotVersion())
			}
			return
		case now := <-timer.C:
			for _, id := range sched.Due(now) {
				pollSeed++
				d := c.Ingest(id, pollSeed)
				sched.Observe(id, d.NewCommentCount(), now)
				if !d.Empty() && oldest.IsZero() {
					oldest = now
				}
			}
			ticks, comments := c.PendingIngest()
			if pol.Due(ticks, comments, oldest, time.Now()) {
				n, _ := c.DrainTick()
				fmt.Fprintf(out, "drain: %d coalesced polls -> snapshot %d, %d new comments\n",
					n, c.SnapshotVersion(), comments)
				oldest = time.Time{}
			}
			wait := cfg.Min
			if next, ok := sched.NextDue(); ok {
				wait = time.Until(next)
			}
			if wait <= 0 {
				wait = time.Millisecond
			}
			timer.Reset(wait)
		}
	}
}

// registerSink attaches the -sink webhook through the same binding as
// POST /api/v1/sinks (scope, predicates, k/limit, delta filters).
func registerSink(c *informer.Corpus, rawURL, query string) (string, error) {
	u, err := url.Parse(rawURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("bad sink url %q: need an absolute http(s) URL", rawURL)
	}
	v, err := url.ParseQuery(query)
	if err != nil {
		return "", fmt.Errorf("bad query %q: %w", query, err)
	}
	q, err := informer.BindQuery(v)
	if err != nil {
		return "", err
	}
	if q.After != nil || q.Offset != 0 {
		return "", fmt.Errorf("standing windows do not paginate; bound %q with k or limit", query)
	}
	f, err := informer.BindDeltaFilter(v)
	if err != nil {
		return "", err
	}
	return c.Sinks().Register(informer.SinkConfig{
		Name:   "flag:-sink",
		Sink:   &informer.WebhookSink{URL: rawURL},
		Query:  q,
		Filter: f,
	})
}

// watchLoop is the built-in demo observer, now a Server-Sent Events
// client: it holds one /api/v1/stream connection over real HTTP (exactly
// like a remote EventSource) and prints the window's rank movement frame
// by frame as ticks land — no re-polling. On a disconnect it resumes with
// its last consumed frame id as the since token; on a 410 — the token
// aged out of the snapshot ring — it re-syncs from the current round, the
// same recovery a remote observer performs. A terminal "resync" frame
// (the in-stream 410 for slow consumers) clears the token the same way.
func watchLoop(base, query string) {
	var since int64 // 0 = start at the current round
	announced := false
	for {
		target := base + "/api/v1/stream?" + query
		if since > 0 {
			target += "&since=" + strconv.FormatInt(since, 10)
		}
		resp, err := http.Get(target)
		if err != nil {
			time.Sleep(200 * time.Millisecond) // server still starting up
			continue
		}
		if resp.StatusCode == http.StatusGone {
			resp.Body.Close()
			fmt.Printf("watch: snapshot %d aged out, re-syncing from the current round\n", since)
			since = 0
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			time.Sleep(time.Second)
			continue
		}
		since = consumeStream(resp, query, since, &announced)
	}
}

// consumeStream reads SSE frames until the connection drops and returns
// the since token to resume from.
func consumeStream(resp *http.Response, query string, since int64, announced *bool) int64 {
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	var event, data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return since // reconnect and resume from the last consumed frame
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "": // frame boundary: dispatch
			switch event {
			case "sync":
				var sync struct {
					Snapshot int64 `json:"snapshot"`
				}
				if json.Unmarshal([]byte(data), &sync) == nil {
					since = sync.Snapshot
					if !*announced {
						fmt.Printf("watch: observing %q from snapshot %d\n", query, since)
						*announced = true
					}
				}
			case "resync":
				fmt.Println("watch: fell behind the tick rate, re-syncing from the current round")
				return 0
			case "": // delta frame
				since = printDelta(data, since)
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"): // heartbeat
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// printDelta renders one delta frame's envelope (byte-identical to a
// /api/v1/watch response body) and returns the new since token.
func printDelta(data string, since int64) int64 {
	var env struct {
		Snapshot int64 `json:"snapshot"`
		Changes  []struct {
			Name    string  `json:"name"`
			Event   string  `json:"event"`
			OldRank int     `json:"old_rank"`
			NewRank int     `json:"new_rank"`
			Score   float64 `json:"score"`
		} `json:"changes"`
	}
	if json.Unmarshal([]byte(data), &env) != nil {
		return since
	}
	for _, ch := range env.Changes {
		switch ch.Event {
		case "entered":
			fmt.Printf("watch: + %-24s entered at #%d (%.3f)\n", ch.Name, ch.NewRank, ch.Score)
		case "left":
			fmt.Printf("watch: - %-24s left (was #%d)\n", ch.Name, ch.OldRank)
		default:
			fmt.Printf("watch: ~ %-24s #%d -> #%d (%.3f)\n", ch.Name, ch.OldRank, ch.NewRank, ch.Score)
		}
	}
	return env.Snapshot
}
