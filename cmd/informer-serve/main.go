// Command informer-serve exposes a generated Web 2.0 corpus over HTTP —
// per-source pages, discussion pages with embedded data islands, RSS/Atom
// feeds and a sitemap — plus the analytics panel as a JSON API, so the
// crawler (or informer-rank -crawl) can walk it like the live Web, and the
// versioned quality-query API under /api/v1 (sources, contributors,
// influencers, sentiment, trending, search, watch, stream) for remote
// observers:
//
//	informer-serve -addr 127.0.0.1:8080 -sources 60
//	informer-rank  -crawl http://127.0.0.1:8080
//	curl 'http://127.0.0.1:8080/api/v1/sources?min_score=0.6&k=10'
//	curl 'http://127.0.0.1:8080/api/v1/sources?limit=20&cursor=<next_cursor>'
//	curl -N 'http://127.0.0.1:8080/api/v1/stream?since=1&min_score=0.5&k=10'
//
// With -tick-days > 0 the corpus advances on a timer (the monitoring
// scenario): /api/v1 responses then carry moving snapshot tokens, clients
// pinning ?snapshot=N keep reading one coherent assessment round, and the
// standing-query transports deliver each tick's rank movement — one
// /api/v1/watch long-poll per tick, or every tick over one /api/v1/stream
// SSE connection. -watch runs a built-in observer against the served
// stream endpoint and prints the deltas:
//
//	informer-serve -tick-days 7 -tick-every 5s -watch 'min_score=0.5&k=10'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	informer "github.com/informing-observers/informer"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		seed     = flag.Int64("seed", 1, "corpus seed")
		sources  = flag.Int("sources", 60, "number of sources")
		tickDays = flag.Int("tick-days", 0, "advance the corpus by this many days per tick (0 = static)")
		tickWait = flag.Duration("tick-every", 30*time.Second, "wall-clock interval between ticks")
		watchQ   = flag.String("watch", "", "demo observer: consume /api/v1/stream with this query string (e.g. 'min_score=0.5&k=10') and print rank movement per tick")
	)
	flag.Parse()

	c := informer.New(informer.Config{Seed: *seed, NumSources: *sources, CommentText: true})
	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	mux.Handle("/panel/", http.StripPrefix("/panel", c.PanelHandler()))
	mux.Handle("/api/v1/", c.APIHandler())

	if *tickDays > 0 {
		go func() {
			for tick := int64(1); ; tick++ {
				time.Sleep(*tickWait)
				c.Advance(*tickDays, *seed+tick)
				fmt.Printf("tick: +%dd, snapshot %d, %d dirty sources\n",
					*tickDays, c.SnapshotVersion(), len(c.LastDelta().DirtySourceIDs()))
			}
		}()
	}
	if *watchQ != "" {
		go watchLoop("http://"+*addr, *watchQ)
	}

	fmt.Printf("serving %d sources on http://%s\n", *sources, *addr)
	fmt.Printf("  crawlable world: /sitemap.txt   panel: /panel/metrics?host=...\n")
	fmt.Printf("  quality API:     /api/v1/sources?min_score=0.6&k=10 (snapshot %d)\n", c.SnapshotVersion())
	fmt.Printf("  watch feed:      /api/v1/watch?since=%d&k=10\n", c.SnapshotVersion())
	fmt.Printf("  SSE stream:      /api/v1/stream?since=%d&k=10\n", c.SnapshotVersion())
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "informer-serve:", err)
		os.Exit(1)
	}
}

// watchLoop is the built-in demo observer, now a Server-Sent Events
// client: it holds one /api/v1/stream connection over real HTTP (exactly
// like a remote EventSource) and prints the window's rank movement frame
// by frame as ticks land — no re-polling. On a disconnect it resumes with
// its last consumed frame id as the since token; on a 410 — the token
// aged out of the snapshot ring — it re-syncs from the current round, the
// same recovery a remote observer performs. A terminal "resync" frame
// (the in-stream 410 for slow consumers) clears the token the same way.
func watchLoop(base, query string) {
	var since int64 // 0 = start at the current round
	announced := false
	for {
		target := base + "/api/v1/stream?" + query
		if since > 0 {
			target += "&since=" + strconv.FormatInt(since, 10)
		}
		resp, err := http.Get(target)
		if err != nil {
			time.Sleep(200 * time.Millisecond) // server still starting up
			continue
		}
		if resp.StatusCode == http.StatusGone {
			resp.Body.Close()
			fmt.Printf("watch: snapshot %d aged out, re-syncing from the current round\n", since)
			since = 0
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			time.Sleep(time.Second)
			continue
		}
		since = consumeStream(resp, query, since, &announced)
	}
}

// consumeStream reads SSE frames until the connection drops and returns
// the since token to resume from.
func consumeStream(resp *http.Response, query string, since int64, announced *bool) int64 {
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	var event, data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return since // reconnect and resume from the last consumed frame
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "": // frame boundary: dispatch
			switch event {
			case "sync":
				var sync struct {
					Snapshot int64 `json:"snapshot"`
				}
				if json.Unmarshal([]byte(data), &sync) == nil {
					since = sync.Snapshot
					if !*announced {
						fmt.Printf("watch: observing %q from snapshot %d\n", query, since)
						*announced = true
					}
				}
			case "resync":
				fmt.Println("watch: fell behind the tick rate, re-syncing from the current round")
				return 0
			case "": // delta frame
				since = printDelta(data, since)
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"): // heartbeat
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// printDelta renders one delta frame's envelope (byte-identical to a
// /api/v1/watch response body) and returns the new since token.
func printDelta(data string, since int64) int64 {
	var env struct {
		Snapshot int64 `json:"snapshot"`
		Changes  []struct {
			Name    string  `json:"name"`
			Event   string  `json:"event"`
			OldRank int     `json:"old_rank"`
			NewRank int     `json:"new_rank"`
			Score   float64 `json:"score"`
		} `json:"changes"`
	}
	if json.Unmarshal([]byte(data), &env) != nil {
		return since
	}
	for _, ch := range env.Changes {
		switch ch.Event {
		case "entered":
			fmt.Printf("watch: + %-24s entered at #%d (%.3f)\n", ch.Name, ch.NewRank, ch.Score)
		case "left":
			fmt.Printf("watch: - %-24s left (was #%d)\n", ch.Name, ch.OldRank)
		default:
			fmt.Printf("watch: ~ %-24s #%d -> #%d (%.3f)\n", ch.Name, ch.OldRank, ch.NewRank, ch.Score)
		}
	}
	return env.Snapshot
}
