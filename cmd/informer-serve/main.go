// Command informer-serve exposes a generated Web 2.0 corpus over HTTP —
// per-source pages, discussion pages with embedded data islands, RSS/Atom
// feeds and a sitemap — plus the analytics panel as a JSON API, so the
// crawler (or informer-rank -crawl) can walk it like the live Web, and the
// versioned quality-query API under /api/v1 (sources, contributors,
// influencers, sentiment, trending, search, watch) for remote observers:
//
//	informer-serve -addr 127.0.0.1:8080 -sources 60
//	informer-rank  -crawl http://127.0.0.1:8080
//	curl 'http://127.0.0.1:8080/api/v1/sources?min_score=0.6&k=10'
//	curl 'http://127.0.0.1:8080/api/v1/sources?limit=20&cursor=<next_cursor>'
//
// With -tick-days > 0 the corpus advances on a timer (the monitoring
// scenario): /api/v1 responses then carry moving snapshot tokens, clients
// pinning ?snapshot=N keep reading one coherent assessment round, and
// /api/v1/watch long-polls deliver each tick's rank movement. -watch runs
// a built-in observer against the served endpoint and prints the deltas:
//
//	informer-serve -tick-days 7 -tick-every 5s -watch 'min_score=0.5&k=10'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	informer "github.com/informing-observers/informer"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		seed     = flag.Int64("seed", 1, "corpus seed")
		sources  = flag.Int("sources", 60, "number of sources")
		tickDays = flag.Int("tick-days", 0, "advance the corpus by this many days per tick (0 = static)")
		tickWait = flag.Duration("tick-every", 30*time.Second, "wall-clock interval between ticks")
		watchQ   = flag.String("watch", "", "demo observer: long-poll /api/v1/watch with this query string (e.g. 'min_score=0.5&k=10') and print rank movement per tick")
	)
	flag.Parse()

	c := informer.New(informer.Config{Seed: *seed, NumSources: *sources, CommentText: true})
	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	mux.Handle("/panel/", http.StripPrefix("/panel", c.PanelHandler()))
	mux.Handle("/api/v1/", c.APIHandler())

	if *tickDays > 0 {
		go func() {
			for tick := int64(1); ; tick++ {
				time.Sleep(*tickWait)
				c.Advance(*tickDays, *seed+tick)
				fmt.Printf("tick: +%dd, snapshot %d, %d dirty sources\n",
					*tickDays, c.SnapshotVersion(), len(c.LastDelta().DirtySourceIDs()))
			}
		}()
	}
	if *watchQ != "" {
		go watchLoop("http://"+*addr, *watchQ)
	}

	fmt.Printf("serving %d sources on http://%s\n", *sources, *addr)
	fmt.Printf("  crawlable world: /sitemap.txt   panel: /panel/metrics?host=...\n")
	fmt.Printf("  quality API:     /api/v1/sources?min_score=0.6&k=10 (snapshot %d)\n", c.SnapshotVersion())
	fmt.Printf("  watch feed:      /api/v1/watch?since=%d&k=10\n", c.SnapshotVersion())
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "informer-serve:", err)
		os.Exit(1)
	}
}

// watchLoop is the built-in demo observer: it long-polls the served
// /api/v1/watch endpoint over real HTTP (exactly like a remote client)
// and prints the window's rank movement whenever a tick lands. On a 410 —
// its since-token aged out of the snapshot ring — it re-syncs from the
// current round, the same recovery a remote observer performs.
func watchLoop(base, query string) {
	since, err := syncSnapshot(base)
	for err != nil {
		time.Sleep(200 * time.Millisecond) // server still starting up
		since, err = syncSnapshot(base)
	}
	fmt.Printf("watch: observing %q from snapshot %d\n", query, since)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/api/v1/watch?since=%d&wait=30s&%s", base, since, query))
		if err != nil {
			time.Sleep(time.Second)
			continue
		}
		if resp.StatusCode == http.StatusGone {
			resp.Body.Close()
			if s, err := syncSnapshot(base); err == nil {
				fmt.Printf("watch: snapshot %d aged out, re-synced to %d\n", since, s)
				since = s
			}
			continue
		}
		var env struct {
			Snapshot int64 `json:"snapshot"`
			Changes  []struct {
				Name    string  `json:"name"`
				Event   string  `json:"event"`
				OldRank int     `json:"old_rank"`
				NewRank int     `json:"new_rank"`
				Score   float64 `json:"score"`
			} `json:"changes"`
		}
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			time.Sleep(time.Second)
			continue
		}
		for _, ch := range env.Changes {
			switch ch.Event {
			case "entered":
				fmt.Printf("watch: + %-24s entered at #%d (%.3f)\n", ch.Name, ch.NewRank, ch.Score)
			case "left":
				fmt.Printf("watch: - %-24s left (was #%d)\n", ch.Name, ch.OldRank)
			default:
				fmt.Printf("watch: ~ %-24s #%d -> #%d (%.3f)\n", ch.Name, ch.OldRank, ch.NewRank, ch.Score)
			}
		}
		since = env.Snapshot
	}
}

// syncSnapshot reads the current snapshot token from a cheap one-row read.
func syncSnapshot(base string) (int64, error) {
	resp, err := http.Get(base + "/api/v1/sources?limit=1&fields=scores")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var env struct {
		Snapshot int64 `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return 0, err
	}
	return env.Snapshot, nil
}
