// Command informer-serve exposes a generated Web 2.0 corpus over HTTP —
// per-source pages, discussion pages with embedded data islands, RSS/Atom
// feeds and a sitemap — plus the analytics panel as a JSON API, so the
// crawler (or informer-rank -crawl) can walk it like the live Web:
//
//	informer-serve -addr 127.0.0.1:8080 -sources 60
//	informer-rank  -crawl http://127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	informer "github.com/informing-observers/informer"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		seed    = flag.Int64("seed", 1, "corpus seed")
		sources = flag.Int("sources", 60, "number of sources")
	)
	flag.Parse()

	c := informer.New(informer.Config{Seed: *seed, NumSources: *sources, CommentText: true})
	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	mux.Handle("/panel/", http.StripPrefix("/panel", c.PanelHandler()))

	fmt.Printf("serving %d sources on http://%s (sitemap at /sitemap.txt, panel at /panel/metrics?host=...)\n",
		*sources, *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "informer-serve:", err)
		os.Exit(1)
	}
}
