package main

// End-to-end smoke of the hardened server lifecycle: boot run() on an
// ephemeral port with a live tick loop and a -sink webhook, prove the
// sink receives the baseline sync plus per-tick deltas across an injected
// 500 (bounded retry recovers, breaker stays closed), then SIGTERM-style
// cancel and prove graceful degradation — pending deliveries flushed, the
// open SSE stream handed its terminal resync frame, run() returning nil.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// logBuf is a goroutine-safe io.Writer for run()'s output (the tick loop
// and the lifecycle messages write concurrently).
type logBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *logBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// waitFor polls cond for up to 15s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServeE2E(t *testing.T) {
	// Flaky webhook: the second POST (the first tick's delta) is served an
	// injected 500; the delivery engine must retry through it.
	var (
		hookMu    sync.Mutex
		hookKinds []string
		hookPosts int
	)
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var env struct {
			Kind     string `json:"kind"`
			Snapshot int64  `json:"snapshot"`
		}
		json.NewDecoder(r.Body).Decode(&env)
		hookMu.Lock()
		defer hookMu.Unlock()
		hookPosts++
		if hookPosts == 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		hookKinds = append(hookKinds, env.Kind)
		w.WriteHeader(http.StatusOK)
	}))
	defer hook.Close()
	delivered := func() []string {
		hookMu.Lock()
		defer hookMu.Unlock()
		return append([]string(nil), hookKinds...)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &logBuf{}
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-sources", "30",
			"-seed", "7",
			"-tick-days", "7",
			"-tick-every", "40ms",
			"-sink", hook.URL,
			"-sink-query", "k=5",
		}, out)
	}()

	// The resolved ephemeral address is announced on stdout.
	var base string
	waitFor(t, "listen announcement", func() bool {
		for _, line := range strings.Split(out.String(), "\n") {
			if _, addr, ok := strings.Cut(line, " on http://"); ok && strings.HasPrefix(line, "serving") {
				base = "http://" + strings.TrimSpace(addr)
				return true
			}
		}
		return false
	})

	// Plain snapshot read works over the booted server.
	resp, err := http.Get(base + "/api/v1/sources?k=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/v1/sources: %d", resp.StatusCode)
	}

	// Hold an SSE stream open across ticks; it must end with the terminal
	// resync frame when the server degrades, not a silent cut.
	stream, err := http.Get(base + "/api/v1/stream?k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/v1/stream: %d", stream.StatusCode)
	}
	streamLines := make(chan string, 256)
	go func() {
		defer close(streamLines)
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
			streamLines <- sc.Text()
		}
	}()

	// The -sink webhook converges through the injected 500: baseline sync
	// first, then at least two tick deltas, in order.
	waitFor(t, "sink deliveries across the injected 500", func() bool {
		got := delivered()
		return len(got) >= 3 && got[0] == "sync"
	})
	for i, kind := range delivered()[1:] {
		if kind != "delta" {
			t.Fatalf("delivery %d: kind %q, want delta", i+1, kind)
		}
	}

	// The management surface reports the recovery: one healthy sink whose
	// retry counter recorded the injected failure.
	resp, err = http.Get(base + "/api/v1/sinks")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Count int `json:"count"`
		Sinks []struct {
			Name    string `json:"name"`
			State   string `json:"state"`
			Retries int64  `json:"retries"`
		} `json:"sinks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if listing.Count != 1 || len(listing.Sinks) != 1 {
		t.Fatalf("sink listing: %+v", listing)
	}
	if s := listing.Sinks[0]; s.Name != "flag:-sink" || s.State != "healthy" || s.Retries < 1 {
		t.Fatalf("sink after injected 500: %+v, want healthy with >=1 retry", s)
	}

	// Graceful degradation: cancel (the in-process SIGTERM), run returns
	// clean, the stream ends on a resync frame.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after cancel")
	}
	sawResync := false
	for line := range streamLines {
		if strings.HasPrefix(line, "event: resync") {
			sawResync = true
		}
	}
	if !sawResync {
		t.Fatal("SSE stream ended without a terminal resync frame")
	}
	if !strings.Contains(out.String(), "shutdown: done") {
		t.Fatalf("lifecycle log missing clean shutdown:\n%s", out.String())
	}
	// The tick loop is stopped BEFORE the registry closes: with a 40ms
	// tick racing the cancel, no tick may land once the shutdown sequence
	// has been announced — a tick after that marker would have published
	// into a closing fan-out.
	log := out.String()
	_, afterMarker, ok := strings.Cut(log, "shutting down:")
	if !ok {
		t.Fatalf("lifecycle log missing the shutdown marker:\n%s", log)
	}
	if strings.Contains(afterMarker, "tick:") {
		t.Fatalf("a tick published after shutdown began:\n%s", log)
	}

	// The port is released: a fresh instance can bind and serve again.
	addr := strings.TrimPrefix(base, "http://")
	ctx2, cancel2 := context.WithCancel(context.Background())
	out2 := &logBuf{}
	runErr2 := make(chan error, 1)
	go func() {
		runErr2 <- run(ctx2, []string{"-addr", addr, "-sources", "10", "-seed", "8"}, out2)
	}()
	waitFor(t, "rebind on the released port", func() bool {
		return strings.Contains(out2.String(), "serving 10 sources")
	})
	cancel2()
	if err := <-runErr2; err != nil {
		t.Fatalf("rebind run: %v", err)
	}
}

// TestServeIngestE2E boots the continuous-ingestion mode: adaptive
// per-source polling buffers activity, the drain policy publishes
// coalesced rounds (the "drain:" log lines), the API serves moving
// snapshots throughout, and shutdown stops ingestion before the registry
// closes — any final drain lands before the shutdown marker, never after.
func TestServeIngestE2E(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &logBuf{}
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-sources", "30",
			"-seed", "7",
			"-ingest",
			"-poll-min", "2ms",
			"-poll-max", "50ms",
			"-ingest-drain-ticks", "1",
		}, out)
	}()

	var base string
	waitFor(t, "listen announcement", func() bool {
		for _, line := range strings.Split(out.String(), "\n") {
			if _, addr, ok := strings.Cut(line, " on http://"); ok && strings.HasPrefix(line, "serving") {
				base = "http://" + strings.TrimSpace(addr)
				return true
			}
		}
		return false
	})

	// At least two drains publish rounds while the server keeps answering.
	waitFor(t, "coalesced drains", func() bool {
		return strings.Count(out.String(), "drain:") >= 2
	})
	resp, err := http.Get(base + "/api/v1/sources?k=5")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Snapshot int64 `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body.Snapshot < 2 {
		t.Fatalf("GET /api/v1/sources: status %d snapshot %d, want OK and >= 2", resp.StatusCode, body.Snapshot)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after cancel")
	}
	log := out.String()
	if !strings.Contains(log, "shutdown: done") {
		t.Fatalf("lifecycle log missing clean shutdown:\n%s", log)
	}
	// Ingestion halts — final drain included — before the registry close
	// is announced: a drain after the marker would have published into a
	// closing fan-out.
	_, afterMarker, ok := strings.Cut(log, "shutting down:")
	if !ok {
		t.Fatalf("lifecycle log missing the shutdown marker:\n%s", log)
	}
	if strings.Contains(afterMarker, "drain:") {
		t.Fatalf("a drain published after shutdown began:\n%s", log)
	}
}

// TestRunBadFlags pins flag/binding failures to clean errors, not a
// half-booted server.
func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-addr", "127.0.0.1:0", "-sink", "::bad-url::"},
		{"-addr", "127.0.0.1:0", "-sink", "http://127.0.0.1:1/x", "-sink-query", "k=nope"},
		{"-addr", "256.0.0.1:99999"},
		{"-addr", "127.0.0.1:0", "-ingest", "-tick-days", "7"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, io.Discard); err == nil {
			t.Errorf("run(%v) = nil, want error", args)
		}
	}
}

// TestRegisterSinkBinding pins that -sink-query accepts the full watch
// form (predicates + delta filters) and rejects pagination.
func TestRegisterSinkBinding(t *testing.T) {
	if err := run(context.Background(), []string{
		"-addr", "127.0.0.1:0", "-sink", "http://127.0.0.1:1/x", "-sink-query", "k=5&offset=3",
	}, io.Discard); err == nil {
		t.Error("pagination in -sink-query must be rejected")
	}
}
