// Command informer-experiments regenerates every table and figure of the
// paper's evaluation over the synthetic corpus:
//
//	informer-experiments -exp all
//	informer-experiments -exp 4.1 -sources 2400 -queries 120
//	informer-experiments -exp table3
//	informer-experiments -exp table4
//	informer-experiments -exp figure1
//	informer-experiments -exp table1
//	informer-experiments -exp table2
//
// Results print in the paper's table shapes; EXPERIMENTS.md records the
// paper-vs-measured comparison for the pinned default seeds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/informing-observers/informer/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, 4.1, table3, table4, figure1, table1, table2")
		seed     = flag.Int64("seed", 42, "corpus seed for 4.1/table3")
		sources  = flag.Int("sources", 2400, "corpus size for 4.1/table3")
		queries  = flag.Int("queries", 120, "query workload for 4.1/table3")
		t4seed   = flag.Int64("table4-seed", 3, "microblog seed for table4 (3 reproduces the paper's cells)")
		accounts = flag.Int("accounts", 813, "microblog accounts for table4/table2")
	)
	flag.Parse()

	runs := strings.Split(*exp, ",")
	want := map[string]bool{}
	for _, r := range runs {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]

	var wb *experiments.Workbench
	bench := func() *experiments.Workbench {
		if wb == nil {
			fmt.Fprintf(os.Stderr, "building %d-source corpus (seed %d)...\n", *sources, *seed)
			wb = experiments.NewWorkbench(experiments.Options{
				Seed:       *seed,
				NumSources: *sources,
				NumQueries: *queries,
			})
		}
		return wb
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "informer-experiments:", err)
		os.Exit(1)
	}

	ran := false
	if all || want["4.1"] {
		r, err := experiments.RunExp41(bench())
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
		ran = true
	}
	if all || want["table3"] {
		r, err := experiments.RunTable3(bench())
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
		ran = true
	}
	if all || want["table4"] {
		r, err := experiments.RunTable4(*t4seed, *accounts)
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
		ran = true
	}
	if all || want["figure1"] {
		r, err := experiments.RunFigure1(99, 120)
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
		ran = true
	}
	if all || want["table1"] {
		r, err := experiments.RunTable1(7, 60)
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
		ran = true
	}
	if all || want["table2"] {
		r, err := experiments.RunTable2(5, *accounts)
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
		ran = true
	}
	if !ran {
		fail(fmt.Errorf("unknown experiment %q", *exp))
	}
}
