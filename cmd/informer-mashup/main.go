// Command informer-mashup executes a JSON mashup composition against a
// generated corpus and prints the resulting dashboard, optionally
// simulating a selection in a viewer (the synchronised-viewing interaction
// of the paper's Figure 1):
//
//	informer-mashup -f dashboard.json
//	informer-mashup -figure1                 # the paper's composition
//	informer-mashup -figure1 -select infList # then select the first item
package main

import (
	"flag"
	"fmt"
	"os"

	informer "github.com/informing-observers/informer"
	"github.com/informing-observers/informer/internal/experiments"
)

func main() {
	var (
		file    = flag.String("f", "", "composition JSON file")
		figure1 = flag.Bool("figure1", false, "run the paper's Figure 1 composition")
		sel     = flag.String("select", "", "after running, select the first item of this viewer")
		seed    = flag.Int64("seed", 99, "corpus seed")
		sources = flag.Int("sources", 120, "corpus size")
		htmlOut = flag.String("html", "", "additionally write the dashboard as an HTML page to this file")
	)
	flag.Parse()

	var composition []byte
	switch {
	case *figure1:
		composition = []byte(experiments.Figure1CompositionJSON)
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "informer-mashup:", err)
			os.Exit(1)
		}
		composition = data
	default:
		fmt.Fprintln(os.Stderr, "informer-mashup: provide -f composition.json or -figure1")
		os.Exit(2)
	}

	c := informer.New(informer.Config{Seed: *seed, NumSources: *sources, CommentText: true})
	rt, err := c.NewMashup(composition)
	if err != nil {
		fmt.Fprintln(os.Stderr, "informer-mashup:", err)
		os.Exit(1)
	}
	d, err := rt.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "informer-mashup:", err)
		os.Exit(1)
	}
	fmt.Println(d.Render())

	if *sel != "" {
		v, ok := d.View(*sel)
		if !ok || len(v.Items) == 0 {
			fmt.Fprintf(os.Stderr, "informer-mashup: viewer %q is empty or unknown\n", *sel)
			os.Exit(1)
		}
		fmt.Printf("\n>>> selecting %q in viewer %q\n\n", v.Items[0].String(), *sel)
		d, err = informer.EmitSelect(rt, *sel, v.Items[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "informer-mashup:", err)
			os.Exit(1)
		}
		fmt.Println(d.Render())
	}

	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, []byte(d.RenderHTML()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "informer-mashup:", err)
			os.Exit(1)
		}
		fmt.Printf("\nHTML dashboard written to %s\n", *htmlOut)
	}
}
