package informer

// Concurrency and evaluation-accounting tests for the sharded corpus.
//
// The race-covered half runs snapshot-pinned cursor walks, in-process
// standing-query subscribers and HTTP long-poll watchers concurrently
// with AdvanceSameDay ticks that dirty a single shard, every shard, and
// no shard at all: walks must see no duplicated or missing rows against
// their pinned snapshot's full ranking, and every subscriber delta must
// equal the DiffWindows set arithmetic over the windows the subscriber
// itself observed. The deterministic half pins the per-tick spine
// evaluation counts to the number of dirty shards: a content-free tick
// carries every shard's spine part, a single-dirty-shard tick (under a
// calibrated churn seed whose benchmarks hold) repairs exactly that
// shard and carries the rest, and an every-shard tick falls back to full
// scans. Run with -race in CI (the shard job covers this package).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/shard"
	"github.com/informing-observers/informer/internal/webgen"
)

// raceWorld builds the corpus the concurrency tests share: 80 sources on
// 4 shards, the same configuration the evaluation-count calibration below
// was probed under.
func raceWorld(seed int64) (*Corpus, []int, shard.Plan) {
	world := webgen.Generate(webgen.Config{Seed: seed, NumSources: 80, NumUsers: 200, CommentText: true})
	c := FromWorldSharded(world, DomainOfInterest{}, seed, 4)
	recs := c.SourceRecords()
	p := shard.NewPlan(len(recs), 4)
	lo, hi := p.Bounds(2)
	ids := make([]int, 0, hi-lo)
	for _, r := range recs[lo:hi] {
		ids = append(ids, r.ID)
	}
	return c, ids, p
}

// pinnedWalk pages through q with keyset cursors against one pinned
// snapshot and requires the concatenation to equal the snapshot's full
// ranking — no duplicated rows, no gaps — however many ticks land while
// the walk is in flight.
func pinnedWalk(t *testing.T, st *assessState, q Query, limit int) bool {
	full, err := st.env.Sources.Query(st.env.SourceRecords, q)
	if err != nil {
		t.Errorf("pinned full query: %v", err)
		return false
	}
	var items []*Assessment
	var cur *Cursor
	for steps := 0; ; steps++ {
		if steps > 200 {
			t.Error("pinned cursor walk did not terminate")
			return false
		}
		qq := q
		qq.Limit, qq.Offset, qq.After = limit, 0, cur
		res, err := st.env.Sources.Query(st.env.SourceRecords, qq)
		if err != nil {
			t.Errorf("pinned cursor page %d: %v", steps, err)
			return false
		}
		items = append(items, res.Items...)
		if res.Next == nil || len(res.Items) == 0 {
			break
		}
		cur = res.Next
	}
	if len(items) != len(full.Items) {
		t.Errorf("pinned walk: %d rows, snapshot ranking has %d (dup or gap)", len(items), len(full.Items))
		return false
	}
	for i := range items {
		if !reflect.DeepEqual(items[i], full.Items[i]) {
			t.Errorf("pinned walk row %d diverged from the snapshot ranking", i)
			return false
		}
	}
	return true
}

// TestShardedConcurrentWalksAndSubscribers is the -race satellite:
// concurrent paginated walks (each pinned to the snapshot it loaded),
// shared-group in-process subscribers and an HTTP /api/v1/watch long-poll
// observer all run while the corpus ticks through every dirty-shard
// shape — one shard's sources, all sources, and a content-free tick.
func TestShardedConcurrentWalksAndSubscribers(t *testing.T) {
	c, shard2IDs, _ := raceWorld(7011)
	const ticks = 12
	// Cycle the three dirty shapes: one shard, every shard, no shard.
	plans := make([][]int, ticks)
	for i := range plans {
		switch i % 3 {
		case 0:
			plans[i] = shard2IDs
		case 1:
			plans[i] = nil
		case 2:
			plans[i] = []int{}
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Snapshot-pinned cursor walkers, one query shape each.
	walkQueries := []Query{
		NewQuery().ScoresOnly().Build(),
		NewQuery().MinScore(0.2).SortByDimension(quality.Time).Build(),
		NewQuery().SortByAttribute(quality.Liveliness).TopK(30).Build(),
	}
	for w, q := range walkQueries {
		wg.Add(1)
		go func(w int, q Query) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !pinnedWalk(t, c.state.Load(), q, 1+w*3) {
					return
				}
			}
		}(w, q)
	}

	// Two subscribers of one standing query: they share a group, and each
	// independently recomputes every delta from the windows it observed.
	subQ := NewQuery().TopK(15).Build()
	var subs []*Subscription
	for s := 0; s < 2; s++ {
		sub, err := c.Subscribe(subQ)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
		wg.Add(1)
		go func(s int, sub *Subscription) {
			defer wg.Done()
			prev := sub.Window()
			n := 0
			for ev := range sub.Events() {
				want := quality.DiffWindows(prev, ev.Window)
				if len(want) != 0 || len(ev.Changes) != 0 {
					if !reflect.DeepEqual(ev.Changes, want) {
						t.Errorf("subscriber %d tick %d: delta is not DiffWindows of the observed windows\n got  %+v\n want %+v", s, n, ev.Changes, want)
					}
				}
				prev = ev.Window
				n++
			}
			if err := sub.Err(); err != nil {
				t.Errorf("subscriber %d dropped: %v", s, err)
			}
			if n != ticks {
				t.Errorf("subscriber %d: %d events, want one per tick (%d)", s, n, ticks)
			}
		}(s, sub)
	}

	// An HTTP long-poll watcher on the same registry: chained since
	// tokens over /api/v1/watch must observe non-decreasing snapshots.
	srv := httptest.NewServer(c.APIHandler())
	defer srv.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		since := c.SnapshotVersion()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(fmt.Sprintf("%s/api/v1/watch?since=%d&wait=100ms&k=10", srv.URL, since))
			if err != nil {
				t.Errorf("watch poll: %v", err)
				return
			}
			var env struct {
				Since    int64 `json:"since"`
				Snapshot int64 `json:"snapshot"`
				Count    int   `json:"count"`
			}
			err = json.NewDecoder(resp.Body).Decode(&env)
			resp.Body.Close()
			if resp.StatusCode == http.StatusGone {
				// The since round fell behind what the registry can diff
				// against: the documented recovery is a fresh read.
				since = c.SnapshotVersion()
				continue
			}
			if resp.StatusCode != http.StatusOK || err != nil {
				t.Errorf("watch poll: status %d, decode err %v", resp.StatusCode, err)
				return
			}
			if env.Snapshot < since {
				t.Errorf("watch snapshot went backwards: %d after since=%d", env.Snapshot, since)
				return
			}
			since = env.Snapshot
		}
	}()

	for i := 0; i < ticks; i++ {
		c.AdvanceSameDay(int64(9300+i), plans[i])
	}
	close(stop)
	for _, sub := range subs {
		sub.Close()
	}
	wg.Wait()
}

// TestShardedTickEvaluationCounts pins per-tick spine evaluation work to
// the number of dirty shards, via the engine's SpineStats counters (which
// reset on every derived engine, so each read covers exactly one tick's
// standing-query rebuilds):
//
//   - a content-free tick (onlySources=[]) leaves every benchmark
//     bit-identical by construction, so all Q standing spines carry all 4
//     shard parts forward: Carries = Q*4, nothing scanned or repaired;
//   - a tick churning one source in shard 2 — under the calibrated seed
//     9008, whose churn moves no p10/p90 benchmark anchor — repairs
//     exactly that shard's part and carries the other three:
//     Repairs = Q, Carries = Q*3;
//   - a tick churning every source moves benchmark anchors, which forces
//     the bit-identity fallback: every shard of every spine is re-scanned,
//     Scans = Q*4.
//
// The registry side is pinned too: however the shards evaluate, one
// subscriber group costs exactly one standing-query evaluation per tick.
func TestShardedTickEvaluationCounts(t *testing.T) {
	c, _, p := raceWorld(7009)
	recs := c.SourceRecords()
	lo, _ := p.Bounds(2)
	rowOf := make(map[int]int, len(recs))
	for i, r := range recs {
		rowOf[r.ID] = i
	}

	queries := []Query{
		NewQuery().ScoresOnly().Build(),
		NewQuery().SortByDimension(quality.Time).TopK(30).Build(),
	}
	const nq = 2
	evalAll := func() {
		t.Helper()
		for _, q := range queries {
			if _, err := c.QuerySources(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	sub, err := c.Subscribe(NewQuery().TopK(10).Build())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	go func() {
		for range sub.Events() {
		}
	}()

	tick := func(label string, seed int64, only []int, wantDirtyShards []int, want quality.SpineStats) {
		t.Helper()
		evalAll() // record this round's spines as the next round's repair substrate
		evalsBefore := c.subs.Stats().Evaluations
		c.AdvanceSameDay(seed, only)
		// The subscriber group's standing query is evaluated exactly once
		// per tick, whatever the shard accounting below says.
		if d := c.subs.Stats().Evaluations - evalsBefore; d != 1 {
			t.Errorf("%s: %d standing-query evaluations this tick, want 1", label, d)
		}
		// The tick dirtied exactly the shards the plan says it should.
		dirty := map[int]bool{}
		for _, id := range c.LastDelta().DirtySourceIDs() {
			dirty[p.Of(rowOf[id])] = true
		}
		if len(dirty) != len(wantDirtyShards) {
			t.Fatalf("%s: churn landed on %d shards, want %v", label, len(dirty), wantDirtyShards)
		}
		for _, s := range wantDirtyShards {
			if !dirty[s] {
				t.Fatalf("%s: shard %d not dirtied, want %v", label, s, wantDirtyShards)
			}
		}
		evalAll() // rebuild the standing spines on the new round
		if got := c.state.Load().env.Sources.SpineStats(); got != want {
			t.Errorf("%s: spine work %+v, want %+v", label, got, want)
		}
	}

	tick("content-free tick", 9100, []int{}, nil,
		quality.SpineStats{Carries: nq * 4})
	tick("single-shard tick", 9008, []int{recs[lo+7].ID}, []int{2},
		quality.SpineStats{Repairs: nq * 1, Carries: nq * 3})
	tick("every-shard tick", 9200, nil, []int{0, 1, 2, 3},
		quality.SpineStats{Scans: nq * 4})
}
