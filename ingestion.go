package informer

import (
	"github.com/informing-observers/informer/internal/ingest"
	"github.com/informing-observers/informer/internal/webgen"
)

// ingestion is the corpus' unpublished per-source ingestion state: the
// pending-delta accumulator (internal/ingest) plus the ID cursor threaded
// through the per-source ticks. Guarded by advanceMu like every other
// writer-side structure; readers never see it — they keep serving the
// last published snapshot until DrainTick.
type ingestion struct {
	acc *ingest.Accumulator
	// cursor supplies fresh discussion/comment IDs to AdvanceSource
	// without re-scanning the world per poll. cursorWorld is the world the
	// cursor is synced with: whenever the next tick departs from any other
	// world (a global Advance intervened, or the cursor is fresh), the
	// cursor is re-scanned before use.
	cursor      *webgen.IDCursor
	cursorWorld *webgen.World
}

// ing lazily builds the ingestion state. Callers hold advanceMu.
func (c *Corpus) ing() *ingestion {
	if c.ingestState == nil {
		c.ingestState = &ingestion{acc: ingest.NewAccumulator()}
	}
	return c.ingestState
}

// ingestFrontier returns the world the next ingestion or global tick must
// depart from: the accumulator's unpublished frontier, or the published
// world when nothing is pending. Callers hold advanceMu.
func (c *Corpus) ingestFrontier(cur *assessState) *World {
	if c.ingestState == nil {
		return cur.world
	}
	return c.ingestState.acc.Frontier(cur.world)
}

// Ingest runs one per-source ingestion tick: the chosen source generates
// fresh activity (webgen.AdvanceSource — same-day, copy-on-write,
// deterministic per seed) on top of the ingestion frontier, and the
// resulting delta folds into the corpus' pending-delta accumulator
// WITHOUT publishing an assessment round — readers keep serving the last
// drained snapshot untouched. DrainTick (or the next global Advance /
// AdvanceSameDay) later coalesces every pending tick into one spanning
// delta and one UpdateRows repair, bit-identical to having applied the
// ticks one published round at a time.
//
// The returned delta describes just this tick (empty when the source drew
// no activity) — the adaptive poll scheduler's feedback signal. It is
// never mutated by later folds.
//
//informer:mutates re-syncs the ID cursor's world pointer under advanceMu; worlds stay immutable
func (c *Corpus) Ingest(sourceID int, seed int64) *Delta {
	c.advanceMu.Lock()
	defer c.advanceMu.Unlock()
	cur := c.state.Load()
	ing := c.ing()
	from := ing.acc.Frontier(cur.world)
	if ing.cursorWorld != from {
		ing.cursor = webgen.NewIDCursor(from)
		ing.cursorWorld = from
	}
	world, delta := webgen.AdvanceSource(from, sourceID, seed, ing.cursor)
	if world == from {
		return delta // quiet poll: nothing to buffer
	}
	if err := ing.acc.Add(from, world, delta); err != nil {
		// Unreachable: from IS the accumulator's frontier under advanceMu.
		panic("informer: ingestion frontier moved under the writer lock: " + err.Error())
	}
	ing.cursorWorld = world
	return delta
}

// PendingIngest reports the buffered ingestion since the last drain: how
// many per-source ticks and how many coalesced new comments are waiting
// for an assessment round. Drives ingest.DrainPolicy decisions and
// observability.
func (c *Corpus) PendingIngest() (ticks, comments int) {
	c.advanceMu.Lock()
	defer c.advanceMu.Unlock()
	if c.ingestState == nil {
		return 0, 0
	}
	return c.ingestState.acc.Ticks(), c.ingestState.acc.PendingComments()
}

// DrainTick drains the pending-delta accumulator into exactly one
// published assessment round: the buffered per-source ticks' coalesced
// spanning delta drives one incremental repair (one UpdateRows pass over
// the union dirty set), the snapshot swaps atomically, and the
// subscription registry fans out one round — however many ticks were
// buffered. Results are bit-identical both to a fresh rebuild of the
// frontier world and to publishing every buffered tick individually (the
// randomized equivalence suites in advance_test.go and
// shard_equiv_test.go pin both).
//
// Returns the number of coalesced ticks and whether a round was published
// (false when nothing was pending — no round publishes, readers and
// subscribers see nothing).
func (c *Corpus) DrainTick() (ticks int, published bool) {
	c.advanceMu.Lock()
	defer c.advanceMu.Unlock()
	return c.drainLocked(c.state.Load())
}

// drainLocked publishes the pending span, if any. Callers hold advanceMu.
func (c *Corpus) drainLocked(cur *assessState) (int, bool) {
	if c.ingestState == nil || c.ingestState.acc.Empty() {
		return 0, false
	}
	world, delta, n := c.ingestState.acc.Drain()
	c.publishAdvance(cur, world, delta)
	return n, true
}
