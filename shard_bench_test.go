package informer

// Sharded-engine benchmarks and the 100k scaling smoke. The records are
// synthetic (webgen's full content generation would dominate setup at
// 100k sources and measure nothing about the engine); they carry the same
// fields the measures read, deterministic per ID. Kinds come in
// contiguous blocks so kind-scoped queries have prunable shards. The
// headline acceptance number: at 100k sources over 50 shards — the same
// 2000 records per shard as BenchmarkQueryTopK's corpus — the per-shard
// query cost stays within ~2x the 2000-source single-shard cost (the
// scatter adds a bounded heap per shard and one k-way merge; the gather
// is corpus-global only for benchmarks). CHANGES.md records the measured
// numbers.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/quality"
)

// syntheticSourceRecords builds n deterministic assessment-ready records.
func syntheticSourceRecords(n int, seed int64) []*quality.SourceRecord {
	cats := []string{"presence", "place", "potential", "pulse", "people", "prerequisites"}
	kinds := []string{"blog", "forum", "review-site", "social-network"}
	observed := time.Date(2012, 3, 26, 12, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(seed))
	recs := make([]*quality.SourceRecord, n)
	for i := range recs {
		r := &quality.SourceRecord{
			ID:   i + 1,
			Name: fmt.Sprintf("synthetic-%d", i+1),
			Host: fmt.Sprintf("s%d.example.test", i+1),
			// Block-contiguous kinds: kind scopes prune whole shards.
			Kind:            kinds[i*len(kinds)/n],
			Founded:         observed.AddDate(0, 0, -(30 + rng.Intn(2000))),
			InboundLinks:    rng.Intn(500),
			FeedSubscribers: rng.Intn(3000),
			ObservedAt:      observed,
			WindowDays:      60,
			Panel: quality.PanelStat{
				TrafficRank:          1 + rng.Intn(n),
				DailyVisitors:        float64(rng.Intn(20000)),
				DailyPageViews:       float64(rng.Intn(60000)),
				BounceRate:           rng.Float64(),
				AvgTimeOnSiteSeconds: 30 + rng.Float64()*300,
				PageViewsPerVisitor:  1 + rng.Float64()*6,
				NewDiscussionsPerDay: rng.Float64() * 8,
			},
		}
		nd := 1 + rng.Intn(3)
		for d := 0; d < nd; d++ {
			disc := quality.DiscussionStat{
				Category: cats[rng.Intn(len(cats))],
				Opened:   observed.AddDate(0, 0, -rng.Intn(55)),
				Open:     rng.Intn(3) > 0,
				TagCount: rng.Intn(5),
			}
			nc := 1 + rng.Intn(4)
			for k := 0; k < nc; k++ {
				disc.Comments = append(disc.Comments, quality.CommentStat{
					AuthorID:  1 + rng.Intn(n),
					Posted:    disc.Opened.Add(time.Duration(rng.Intn(72)) * time.Hour),
					TagCount:  rng.Intn(4),
					Replies:   rng.Intn(6),
					Feedbacks: rng.Intn(10),
					Reads:     rng.Intn(400),
				})
			}
			r.Discussions = append(r.Discussions, disc)
		}
		recs[i] = r
	}
	return recs
}

// shardBenchConfigs compares the single-shard 2000-source corpus (the
// BenchmarkQueryTopK scale) against 100k sources at the same 2000 records
// per shard. The -short guard keeps the 100k tier out of the CI bench
// smoke; run without -short for the scaling numbers.
func shardBenchConfigs(b *testing.B) []struct {
	name      string
	n, shards int
} {
	cfgs := []struct {
		name      string
		n, shards int
	}{{"n=2000/shards=1", 2000, 1}}
	if !testing.Short() {
		cfgs = append(cfgs, struct {
			name      string
			n, shards int
		}{"n=100000/shards=50", 100000, 50})
	}
	return cfgs
}

// BenchmarkQueryTopKSharded measures the scatter-gather top-k serving
// path: per-shard bounded heaps merged k-way, bit-identical to the
// unsharded plan. ns/shard is the acceptance metric — per-shard cost at
// 100k/50 must stay within ~2x the 2000-source single-shard ns/op.
func BenchmarkQueryTopKSharded(b *testing.B) {
	for _, cfg := range shardBenchConfigs(b) {
		b.Run(cfg.name, func(b *testing.B) {
			recs := syntheticSourceRecords(cfg.n, 1234)
			a := quality.NewSourceAssessor(recs, quality.DomainOfInterest{}, &quality.AssessorOptions{Shards: cfg.shards})
			q := quality.Query{MinScore: 0.5, TopK: 10}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := a.Query(recs, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Items) != 10 {
					b.Fatalf("top-k returned %d items", len(res.Items))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cfg.shards), "ns/shard")
		})
	}
}

// BenchmarkAdvanceSharded measures one sharded UpdateRows tick with ~1%
// churn: dirty rows split per shard, clean shards rebound to the repaired
// global benchmark ledger without touching their matrices. ns/shard again
// normalizes by the shard count for the scaling comparison. The "spread"
// churn shape dirties every shard (the worst case — every shard pays a
// matrix derivation); "one-shard" confines the same per-shard churn rate
// to shard 0, the shape the dirty-shard concentration argument is about:
// 49 clean shards carry their matrices by reference and the tick pays one
// shard's update plus the corpus-global ledger repair.
func BenchmarkAdvanceSharded(b *testing.B) {
	for _, cfg := range shardBenchConfigs(b) {
		shapes := []string{"spread"}
		if cfg.shards > 1 {
			shapes = append(shapes, "one-shard")
		}
		for _, shape := range shapes {
			b.Run(cfg.name+"/churn="+shape, func(b *testing.B) {
				recs := syntheticSourceRecords(cfg.n, 1234)
				a := quality.NewSourceAssessor(recs, quality.DomainOfInterest{}, &quality.AssessorOptions{Shards: cfg.shards})
				nDirty := cfg.n / 100
				stride := 100 // spread: every shard gets its share
				dirtyShards := cfg.shards
				if shape == "one-shard" {
					nDirty /= cfg.shards // the same ~1% rate, on one shard
					stride = 1
					dirtyShards = 1
				}
				if nDirty < 1 {
					nDirty = 1
				}
				dirty := make([]int, nDirty)
				span := cfg.n
				if shape == "one-shard" {
					span = cfg.n / cfg.shards // churn stays inside shard 0
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Touch the fields the panel and liveliness measures read.
					for j := range dirty {
						row := (j*stride + i) % span
						dirty[j] = row
						recs[row].Panel.DailyVisitors = float64((i+j)%20000) + 1
						recs[row].InboundLinks = (recs[row].InboundLinks + 1) % 500
					}
					a = a.UpdateRows(recs, dirty, false)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(dirtyShards), "ns/dirty-shard")
				if got := a.Rank(recs); len(got) != cfg.n {
					b.Fatal("short ranking after sharded updates")
				}
			})
		}
	}
}

// TestSharded100kScalingSmoke is the scaling acceptance smoke: per-shard
// query cost at 100k sources over 50 shards stays within a small constant
// factor of the 2000-source single-shard cost. Medians over several
// repetitions keep the check robust on shared CI machines; the bound is
// deliberately loose (4x) against scheduler noise — the measured ratio
// (recorded in CHANGES.md) sits near 1x. Guarded by -short: the bench
// smoke and quick local runs skip the 100k build.
func TestSharded100kScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("100k scaling smoke skipped in -short mode")
	}
	q := quality.Query{MinScore: 0.5, TopK: 10}
	perShard := func(n, shards, reps int) time.Duration {
		recs := syntheticSourceRecords(n, 1234)
		a := quality.NewSourceAssessor(recs, quality.DomainOfInterest{}, &quality.AssessorOptions{Shards: shards})
		times := make([]time.Duration, reps)
		for i := range times {
			startAt := time.Now()
			if _, err := a.Query(recs, q); err != nil {
				t.Fatal(err)
			}
			times[i] = time.Since(startAt)
		}
		// Median of the repetitions.
		for i := 1; i < len(times); i++ {
			for j := i; j > 0 && times[j] < times[j-1]; j-- {
				times[j], times[j-1] = times[j-1], times[j]
			}
		}
		return times[len(times)/2] / time.Duration(shards)
	}
	small := perShard(2000, 1, 9)
	large := perShard(100000, 50, 9)
	t.Logf("per-shard query cost: 2000x1 %v, 100000x50 %v (ratio %.2f)", small, large, float64(large)/float64(small))
	if large > 4*small {
		t.Fatalf("per-shard cost did not scale: %v per shard at 100k/50 vs %v at 2000/1", large, small)
	}
}
