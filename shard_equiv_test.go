package informer

// The PR's acceptance pin: the sharded scatter-gather engine is
// bit-identical to the unsharded one, for every query plan. A seeded
// random suite draws ~200 queries spanning scopes, predicates, sorts,
// top-k bounds, windows and projections and requires the same bytes from
// three plans — the direct rankTopK path (unsharded vs scatter-gather),
// and the facade's spine-cache path (cached spine + window slice) — at
// shard counts {1, 2, 7, 16}. On top of that: chained-cursor walks vs
// deprecated offset walks page by page, a window sweep straddling every
// shard boundary, and the carried-spine repair path vs a fresh scan.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/shard"
	"github.com/informing-observers/informer/internal/webgen"
)

// equivShardCounts are the shard layouts the suite compares against the
// unsharded baseline: the degenerate 1 (the single-matrix engine via the
// sharded construction path must also agree), a boundary-poor 2, a
// boundary-rich prime 7, and 16 (more shards than some query windows).
var equivShardCounts = []int{1, 2, 7, 16}

// buildEquivCorpora assesses one generated world under every shard count,
// plus the unsharded baseline. All corpora share the immutable world.
func buildEquivCorpora(t *testing.T, seed int64, nSources, nUsers int) (*Corpus, map[int]*Corpus) {
	t.Helper()
	world := webgen.Generate(webgen.Config{Seed: seed, NumSources: nSources, NumUsers: nUsers, CommentText: true})
	base := FromWorld(world, DomainOfInterest{}, seed)
	sharded := make(map[int]*Corpus, len(equivShardCounts))
	for _, ns := range equivShardCounts {
		sharded[ns] = FromWorldSharded(world, DomainOfInterest{}, seed, ns)
		if got := sharded[ns].ShardCount(); ns > 1 && got != ns {
			t.Fatalf("FromWorldSharded(%d): ShardCount %d", ns, got)
		}
	}
	return base, sharded
}

// randomQuery draws one query from the full plan space. Contributor
// queries skip kind scopes (sources only) and source queries skip the
// spam predicate (contributors only), mirroring the assessors' domains.
func randomQuery(rng *rand.Rand, ids []int, contributors bool) Query {
	b := NewQuery()
	cats := []string{"presence", "place", "potential", "pulse", "people", "prerequisites"}
	kinds := []string{"blog", "forum", "review-site", "social-network"}
	dims := quality.Dimensions()
	atts := []Attribute{quality.Relevance, quality.Breadth, quality.Traffic, quality.Liveliness}
	if contributors {
		atts = []Attribute{quality.Relevance, quality.Breadth, quality.Activity, quality.Liveliness}
	}

	// Scope: each axis applies with some probability, occasionally
	// unsatisfiable (an unknown category or an out-of-range ID).
	if rng.Intn(4) == 0 {
		b.Categories(cats[rng.Intn(len(cats))])
		if rng.Intn(3) == 0 {
			b.Categories(cats[rng.Intn(len(cats))])
		}
	}
	if !contributors && rng.Intn(4) == 0 {
		b.Kinds(kinds[rng.Intn(len(kinds))])
		if rng.Intn(3) == 0 {
			b.Kinds(kinds[rng.Intn(len(kinds))])
		}
	}
	if rng.Intn(5) == 0 {
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			if rng.Intn(6) == 0 {
				b.IDs(1 << 20) // off-corpus: scatter must agree the match set is empty
			} else {
				b.IDs(ids[rng.Intn(len(ids))])
			}
		}
	}

	// Predicates.
	if rng.Intn(3) == 0 {
		b.MinScore(float64(rng.Intn(8)) / 10)
	}
	if rng.Intn(4) == 0 {
		b.MinDimension(dims[rng.Intn(len(dims))], float64(rng.Intn(7))/10)
	}
	if rng.Intn(4) == 0 {
		b.MinAttribute(atts[rng.Intn(len(atts))], float64(rng.Intn(7))/10)
	}
	if !contributors && rng.Intn(6) == 0 {
		b.MinMeasure("src.time.liveliness", float64(rng.Intn(5))/10)
	}
	if contributors && rng.Intn(3) == 0 {
		b.SpamResistant(float64(rng.Intn(5)) / 10)
	}

	// Sort axis.
	switch rng.Intn(3) {
	case 0:
		b.SortByScore()
	case 1:
		b.SortByDimension(dims[rng.Intn(len(dims))])
	case 2:
		b.SortByAttribute(atts[rng.Intn(len(atts))])
	}

	// Selection bound and window.
	if rng.Intn(2) == 0 {
		b.TopK(1 + rng.Intn(40))
	}
	switch rng.Intn(3) {
	case 0: // unwindowed
	case 1:
		b.Limit(1 + rng.Intn(12))
	case 2:
		b.Page(rng.Intn(30), 1+rng.Intn(12))
	}
	if rng.Intn(3) == 0 {
		b.ScoresOnly()
	}
	return b.Build()
}

// queryPlans executes q under every plan one corpus offers — the direct
// rankTopK path and the facade's cached spine + window path — and
// requires them to agree with each other before cross-corpus comparison.
func queryPlans(t *testing.T, c *Corpus, q Query, contributors bool, label string) *QueryResult {
	t.Helper()
	st := c.state.Load()
	var direct, cached *QueryResult
	var dErr, cErr error
	if contributors {
		direct, dErr = st.env.Contributors.Query(st.env.ContributorRecords, q)
		cached, cErr = c.QueryContributors(q)
	} else {
		direct, dErr = st.env.Sources.Query(st.env.SourceRecords, q)
		cached, cErr = c.QuerySources(q)
	}
	if (dErr == nil) != (cErr == nil) {
		t.Fatalf("%s: plans disagree on error: direct %v, cached %v", label, dErr, cErr)
	}
	if dErr != nil {
		return nil
	}
	if !reflect.DeepEqual(direct, cached) {
		t.Fatalf("%s: spine-cache plan diverged from direct rankTopK\n direct %+v\n cached %+v", label, direct, cached)
	}
	return cached
}

// requireSameResult is the bit-identity assertion: every item (scores,
// maps, projections), the total, the window start and the resume cursor.
func requireSameResult(t *testing.T, label string, want, got *QueryResult) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: one plan errored, the other answered (want %v, got %v)", label, want, got)
	}
	if want == nil || reflect.DeepEqual(want, got) {
		return
	}
	if want.Total != got.Total || want.Start != got.Start || len(want.Items) != len(got.Items) {
		t.Fatalf("%s: shape diverged: total %d/%d start %d/%d items %d/%d",
			label, want.Total, got.Total, want.Start, got.Start, len(want.Items), len(got.Items))
	}
	for i := range want.Items {
		if !reflect.DeepEqual(want.Items[i], got.Items[i]) {
			t.Fatalf("%s: item %d diverged:\n want %+v\n got  %+v", label, i, want.Items[i], got.Items[i])
		}
	}
	t.Fatalf("%s: cursors diverged: want %+v, got %+v", label, want.Next, got.Next)
}

// TestCrossShardEquivalenceRandomized is the randomized acceptance suite:
// ~200 seeded-random queries, each executed on the unsharded baseline and
// at every shard count, across both record populations and both plans.
func TestCrossShardEquivalenceRandomized(t *testing.T) {
	base, sharded := buildEquivCorpora(t, 7001, 90, 240)
	srcIDs := make([]int, 0, len(base.SourceRecords()))
	for _, r := range base.SourceRecords() {
		srcIDs = append(srcIDs, r.ID)
	}
	conIDs := make([]int, 0, len(base.ContributorRecords()))
	for _, r := range base.ContributorRecords() {
		conIDs = append(conIDs, r.ID)
	}

	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 200; trial++ {
		contributors := trial%2 == 1
		ids := srcIDs
		if contributors {
			ids = conIDs
		}
		q := randomQuery(rng, ids, contributors)
		label := fmt.Sprintf("trial %d (contributors=%v) %+v", trial, contributors, q)
		want := queryPlans(t, base, q, contributors, label+" [unsharded]")
		for _, ns := range equivShardCounts {
			got := queryPlans(t, sharded[ns], q, contributors, fmt.Sprintf("%s [shards=%d]", label, ns))
			requireSameResult(t, fmt.Sprintf("%s [shards=%d vs unsharded]", label, ns), want, got)
		}
	}
}

// cursorWalk pages through q with keyset cursors until exhaustion,
// returning every page (the concatenation and the per-page windows both
// feed assertions). The walk bound guards against a cursor loop.
func cursorWalk(t *testing.T, c *Corpus, q Query, limit int, contributors bool) []*QueryResult {
	t.Helper()
	var pages []*QueryResult
	var cur *Cursor
	for steps := 0; ; steps++ {
		if steps > 200 {
			t.Fatal("cursor walk did not terminate")
		}
		qq := q
		qq.Limit, qq.Offset, qq.After = limit, 0, cur
		res, err := queryFor(c, qq, contributors)
		if err != nil {
			t.Fatalf("cursor page %d: %v", steps, err)
		}
		pages = append(pages, res)
		if res.Next == nil || len(res.Items) == 0 {
			return pages
		}
		cur = res.Next
	}
}

func queryFor(c *Corpus, q Query, contributors bool) (*QueryResult, error) {
	if contributors {
		return c.QueryContributors(q)
	}
	return c.QuerySources(q)
}

// TestCrossShardCursorWalks pins pagination arithmetic across shard
// counts: a chained-cursor walk and a deprecated offset walk visit the
// same rows in the same windows on every engine, and both equal the
// unsharded engine's pages byte for byte.
func TestCrossShardCursorWalks(t *testing.T) {
	base, sharded := buildEquivCorpora(t, 7003, 70, 180)
	queries := []Query{
		NewQuery().Build(),
		NewQuery().MinScore(0.3).SortByDimension(quality.Time).Build(),
		NewQuery().Categories("place", "pulse").ScoresOnly().Build(),
		NewQuery().TopK(25).SortByAttribute(quality.Traffic).Build(),
	}
	for qi, q := range queries {
		for _, contributors := range []bool{false, true} {
			if len(q.Kinds) > 0 && contributors {
				continue
			}
			for _, limit := range []int{1, 3, 7} {
				basePages := cursorWalk(t, base, q, limit, contributors)
				for _, ns := range equivShardCounts {
					pages := cursorWalk(t, sharded[ns], q, limit, contributors)
					if len(pages) != len(basePages) {
						t.Fatalf("query %d limit %d shards %d: %d cursor pages, want %d",
							qi, limit, ns, len(pages), len(basePages))
					}
					for p := range pages {
						requireSameResult(t, fmt.Sprintf("query %d limit %d shards %d cursor page %d", qi, limit, ns, p),
							basePages[p], pages[p])
					}
					// The offset shim walks the same spine: page p of the
					// offset walk equals cursor page p (same rows, same
					// totals; Start becomes the explicit offset).
					off := 0
					for p := range basePages {
						qq := q
						qq.Offset, qq.Limit = off, limit
						offRes, err := queryFor(sharded[ns], qq, contributors)
						if err != nil {
							t.Fatalf("offset page %d: %v", p, err)
						}
						if !reflect.DeepEqual(offRes.Items, basePages[p].Items) {
							t.Fatalf("query %d limit %d shards %d: offset page %d diverged from cursor page",
								qi, limit, ns, p)
						}
						off += len(basePages[p].Items)
					}
				}
			}
		}
	}
}

// TestShardBoundaryWindowSweep sweeps a fixed-width window across every
// shard boundary of every plan — the windows most likely to expose a
// merge or clipping bug, since their rows straddle two (or more) shards'
// candidate lists.
func TestShardBoundaryWindowSweep(t *testing.T) {
	base, sharded := buildEquivCorpora(t, 7005, 60, 150)
	n := len(base.SourceRecords())
	q := NewQuery().ScoresOnly().Build()
	const width = 5
	for _, ns := range equivShardCounts {
		p := shard.NewPlan(n, ns)
		for s := 1; s < p.Shards(); s++ {
			lo, _ := p.Bounds(s)
			for off := lo - width + 1; off <= lo+1; off++ {
				if off < 0 {
					continue
				}
				qq := q
				qq.Offset, qq.Limit = off, width
				want, err := base.QuerySources(qq)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sharded[ns].QuerySources(qq)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, fmt.Sprintf("shards %d boundary %d offset %d", ns, s, off), want, got)
			}
		}
	}
}

// TestRepairedSpineEquivalence pins the carried-spine repair path: after
// same-day churn ticks, a corpus whose standing-query spines were
// repaired from the previous round (quality.RepairSpine via the facade's
// prevSpines hand-off) answers bit-identically to a freshly built corpus
// over the same world — for every shard count, across several ticks.
func TestRepairedSpineEquivalence(t *testing.T) {
	world := webgen.Generate(webgen.Config{Seed: 7007, NumSources: 80, NumUsers: 200, CommentText: true})
	queries := []Query{
		NewQuery().ScoresOnly().Build(),
		NewQuery().MinScore(0.3).SortByDimension(quality.Time).TopK(20).Build(),
		NewQuery().Categories("place").SortByAttribute(quality.Liveliness).Build(),
	}
	for _, ns := range []int{1, 2, 7} {
		c := FromWorldSharded(world, DomainOfInterest{}, 7007, ns)
		for tick := 0; tick < 4; tick++ {
			// Evaluate the standing queries so this round's spines are
			// recorded for the next round's repair substrate.
			for _, q := range queries {
				if _, err := c.QuerySources(q); err != nil {
					t.Fatal(err)
				}
			}
			c.AdvanceSameDay(int64(8100+tick), nil)
			fresh := FromWorldSharded(c.World(), DomainOfInterest{}, 7007, ns)
			for qi, q := range queries {
				got, err := c.QuerySources(q) // repaired (or carried) spine
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.QuerySources(q) // cold scan
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, fmt.Sprintf("shards %d tick %d query %d", ns, tick, qi), want, got)
			}
		}
	}
}

// TestSkewedIngestDrainShardEquivalence pins the adaptive-ingestion drain
// path on the sharded engine: several skewed per-source ticks (90% of
// polls landing on the ~5% hottest sources, webgen.AdvanceSource) buffer
// in the pending-delta accumulator, one DrainTick coalesces them into a
// single repair round, and the drained corpus answers every standing
// query byte-identically to a freshly built corpus over the same world —
// at the degenerate shard count 1 and the boundary-rich prime 7. The
// per-source ticks raise the corpus-global MaxOpenDiscussions ceiling
// without moving the epoch, so this is the sharded regression pin for the
// churn-path staleness bug fixed in services.Env.Advance.
func TestSkewedIngestDrainShardEquivalence(t *testing.T) {
	world := webgen.Generate(webgen.Config{Seed: 7011, NumSources: 60, NumUsers: 160, CommentText: true, ChurnScale: 3})
	queries := []Query{
		NewQuery().ScoresOnly().Build(),
		NewQuery().MinScore(0.3).SortByDimension(quality.Time).TopK(20).Build(),
		NewQuery().SortByAttribute(quality.Traffic).Build(),
	}
	for _, ns := range []int{1, 7} {
		c := FromWorldSharded(world, DomainOfInterest{}, 7011, ns)
		rng := rand.New(rand.NewSource(int64(9300 + ns)))
		for round := 0; round < 3; round++ {
			// Record this round's spines, then buffer a skewed batch of
			// per-source ticks without publishing.
			for _, q := range queries {
				if _, err := c.QuerySources(q); err != nil {
					t.Fatal(err)
				}
			}
			for i, id := range skewedTicks(rng, c.World(), 10) {
				c.Ingest(id, int64(9400+round*100+i))
			}
			ticks, _ := c.PendingIngest()
			if _, published := c.DrainTick(); published != (ticks > 0) {
				t.Fatalf("shards %d round %d: DrainTick published=%v with %d pending ticks", ns, round, !published, ticks)
			}
			fresh := FromWorldSharded(c.World(), DomainOfInterest{}, 7011, ns)
			for qi, q := range queries {
				got, err := c.QuerySources(q) // repaired spine over the coalesced delta
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.QuerySources(q) // cold scan
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, fmt.Sprintf("shards %d round %d query %d", ns, round, qi), want, got)
			}
			assertCorpusEquals(t, c, fresh)
		}
	}
}
