package informer

// Acceptance contracts of the watch delta and the per-snapshot query
// cache. The headline pin: across a realistic 1%-daily-churn tick over
// 2000 sources, the watch delta of a top-k window is exactly the set
// difference (plus rank movement) of the two snapshots' windows, computed
// here independently of DiffWindows' own bookkeeping.

import (
	"reflect"
	"testing"

	"github.com/informing-observers/informer/internal/webgen"
)

// TestWatchDeltaMatchesWindowSetDifference advances a 2000-source corpus
// by one ~1%-churn day and checks every claim the watch makes against set
// arithmetic over the two windows: entered = new minus old, left = old
// minus new, moved = intersection at different ranks, holds omitted, and
// the reported ranks are the true window positions.
func TestWatchDeltaMatchesWindowSetDifference(t *testing.T) {
	world := webgen.Generate(webgen.Config{Seed: 91, NumSources: 2000, ChurnScale: 0.27})
	c := FromWorld(world, DomainOfInterest{}, 91)

	q := NewQuery().TopK(50).ScoresOnly().Build()
	before, err := c.QuerySources(q)
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(1, 9191)
	delta := c.LastDelta()
	if delta == nil || len(delta.DirtySourceIDs()) == 0 {
		t.Fatal("the tick changed nothing; pick another seed")
	}
	churn := float64(len(delta.DirtySourceIDs())) / 2000
	if churn > 0.05 {
		t.Fatalf("churn %.3f is not the slow daily regime", churn)
	}
	after, err := c.QuerySources(q)
	if err != nil {
		t.Fatal(err)
	}

	changes := DiffWindows(before.Items, after.Items)

	oldRank := map[int]int{}
	for i, a := range before.Items {
		oldRank[a.ID] = i + 1
	}
	newRank := map[int]int{}
	for i, a := range after.Items {
		newRank[a.ID] = i + 1
	}
	got := map[int]WindowChange{}
	for _, ch := range changes {
		if _, dup := got[ch.ID]; dup {
			t.Fatalf("id %d reported twice", ch.ID)
		}
		got[ch.ID] = ch
	}
	for id, nr := range newRank {
		or := oldRank[id]
		ch, reported := got[id]
		switch {
		case or == 0: // entered = new minus old
			if !reported || ch.Event() != "entered" || ch.NewRank != nr || ch.OldRank != 0 {
				t.Fatalf("id %d entered at %d, reported %+v", id, nr, ch)
			}
		case or != nr: // moved = intersection at different ranks
			if !reported || ch.Event() != "moved" || ch.OldRank != or || ch.NewRank != nr {
				t.Fatalf("id %d moved %d->%d, reported %+v", id, or, nr, ch)
			}
		default: // held its rank: must be omitted
			if reported {
				t.Fatalf("id %d held rank %d but was reported %+v", id, nr, ch)
			}
		}
	}
	for id, or := range oldRank {
		if newRank[id] != 0 {
			continue
		}
		ch, reported := got[id] // left = old minus new
		if !reported || ch.Event() != "left" || ch.OldRank != or || ch.NewRank != 0 {
			t.Fatalf("id %d left from rank %d, reported %+v", id, or, ch)
		}
	}
	// Every reported change is accounted for by the set arithmetic above.
	for id := range got {
		if oldRank[id] == 0 && newRank[id] == 0 {
			t.Fatalf("id %d reported but in neither window", id)
		}
	}
}

// TestQueryCacheHitsWithinSnapshot pins the per-query result cache:
// identical queries during one assessment round share one result (map
// hit), different windows of one query share the underlying ranked spine,
// and an Advance invalidates the round atomically.
func TestQueryCacheHitsWithinSnapshot(t *testing.T) {
	c := New(Config{Seed: 187, NumSources: 40, NumUsers: 100})

	q := NewQuery().MinScore(0.4).TopK(10).Build()
	r1, err := c.QuerySources(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.QuerySources(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("identical queries within one round must share one cached result")
	}
	// Representation differences canonicalize onto the same entry.
	r3, err := c.QuerySources(Query{MinScore: 0.4, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r3 {
		t.Fatal("builder and literal spellings of one query must share the cache entry")
	}
	// Contributor results are cached independently.
	cq := NewQuery().TopK(5).Build()
	c1, err := c.QueryContributors(cq)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.QueryContributors(cq)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("contributor queries must cache too")
	}

	// Cached or not, results match a fresh uncached execution.
	st := c.state.Load()
	fresh, err := st.env.Sources.Query(st.env.SourceRecords, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Items) != len(r1.Items) || fresh.Total != r1.Total {
		t.Fatal("cached result diverges from direct execution")
	}
	for i := range fresh.Items {
		if fresh.Items[i].ID != r1.Items[i].ID || fresh.Items[i].Score != r1.Items[i].Score {
			t.Fatal("cached item diverges from direct execution")
		}
	}

	// A tick swaps the snapshot and with it the whole cache.
	c.Advance(10, 1870)
	r4, err := c.QuerySources(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r4 {
		t.Fatal("a new assessment round must not serve the previous round's cache")
	}
}

// TestQueryCacheErrorQueries pins that invalid queries keep erroring
// through the cache path (and never poison it for valid ones).
func TestQueryCacheErrorQueries(t *testing.T) {
	c := New(Config{Seed: 189, NumSources: 20, NumUsers: 60})
	bad := Query{MinMeasure: map[string]float64{"no.such.measure": 0.5}}
	if _, err := c.QuerySources(bad); err == nil {
		t.Fatal("unknown measure must error through the cache")
	}
	if _, err := c.QuerySources(bad); err == nil {
		t.Fatal("cached error must stay an error")
	}
	if _, err := c.QuerySources(Query{Offset: 1, After: &Cursor{}}); err == nil {
		t.Fatal("cursor+offset must error through the cache")
	}
	if _, err := c.QuerySources(NewQuery().TopK(3).Build()); err != nil {
		t.Fatalf("valid query after errors: %v", err)
	}
	if _, err := c.QueryContributors(NewQuery().Kinds("blog").Build()); err == nil {
		t.Fatal("kinds on contributors must error through the cache")
	}
}

// TestQueryCacheCursorWalkAcrossFacade pins an in-process cursor walk
// through the cached facade path against the one-shot ranking — the same
// contract the HTTP layer relies on, minus the wire.
func TestQueryCacheCursorWalkAcrossFacade(t *testing.T) {
	c := New(Config{Seed: 191, NumSources: 60, NumUsers: 120})
	full, err := c.QuerySources(NewQuery().MinScore(0.3).Build())
	if err != nil {
		t.Fatal(err)
	}
	var walked []*Assessment
	var cur *Cursor
	for {
		res, err := c.QuerySources(NewQuery().MinScore(0.3).Limit(9).Resume(cur).Build())
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, res.Items...)
		if res.Total != full.Total {
			t.Fatalf("total drifted mid-walk: %d then %d", full.Total, res.Total)
		}
		if res.Next == nil {
			break
		}
		cur = res.Next
	}
	if len(walked) != len(full.Items) {
		t.Fatalf("cursor walk returned %d of %d rows", len(walked), len(full.Items))
	}
	for i := range walked {
		if walked[i].ID != full.Items[i].ID || walked[i].Score != full.Items[i].Score {
			t.Fatalf("cursor walk diverges at %d", i)
		}
	}
}

// TestCursorWalkLargeCorpusEquivalence is the PR's acceptance pin at full
// scale: over 2000 sources, a chained-cursor walk is bit-identical to the
// deprecated offset walk and to filter+slice of the full Rank output.
func TestCursorWalkLargeCorpusEquivalence(t *testing.T) {
	world := webgen.Generate(webgen.Config{Seed: 23, NumSources: 2000})
	c := FromWorld(world, DomainOfInterest{}, 23)

	// Reference: filter the materialized full ranking and keep the slice.
	var want []*Assessment
	for _, a := range c.RankSources() {
		if a.Score >= 0.5 {
			want = append(want, a)
		}
	}
	if len(want) == 0 || len(want) == 2000 {
		t.Fatalf("predicate not selective: %d of 2000", len(want))
	}

	const limit = 73
	var offsetWalk []*Assessment
	for off := 0; ; off += limit {
		res, err := c.QuerySources(NewQuery().MinScore(0.5).Page(off, limit).Build())
		if err != nil {
			t.Fatal(err)
		}
		offsetWalk = append(offsetWalk, res.Items...)
		if len(res.Items) < limit {
			break
		}
	}
	var cursorWalk []*Assessment
	var cur *Cursor
	for {
		res, err := c.QuerySources(NewQuery().MinScore(0.5).Limit(limit).Resume(cur).Build())
		if err != nil {
			t.Fatal(err)
		}
		cursorWalk = append(cursorWalk, res.Items...)
		if res.Next == nil {
			break
		}
		cur = res.Next
	}

	if len(offsetWalk) != len(want) || len(cursorWalk) != len(want) {
		t.Fatalf("walk lengths: offset %d, cursor %d, want %d", len(offsetWalk), len(cursorWalk), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(offsetWalk[i], want[i]) {
			t.Fatalf("offset walk diverges from filter+slice of Rank at %d", i)
		}
		if !reflect.DeepEqual(cursorWalk[i], want[i]) {
			t.Fatalf("cursor walk diverges from filter+slice of Rank at %d", i)
		}
	}
}
