package informer

// The fluent query builder: the ergonomic face of the Query model
// (DESIGN.md section 7). A QueryBuilder composes the declarative request —
// scope, quality predicates, ranking axis, top-k, pagination, projection —
// that QuerySources, QueryContributors, QueryRecords and the /api/v1 HTTP
// layer all execute against one immutable assessment snapshot:
//
//	res, err := c.QuerySources(informer.NewQuery().
//	        Categories("place").
//	        MinScore(0.6).
//	        MinDimension(informer.Time, 0.5).
//	        TopK(10).
//	        Build())
//
// Execution pushes every predicate below the ranking: with a top-k bound
// the assessor streams matches through a bounded heap over its cached
// measure matrix and materializes only the winners, instead of assessing
// and sorting the whole corpus.

import "github.com/informing-observers/informer/internal/quality"

// Query is the declarative, composable read request executed against an
// assessment snapshot; see quality.Query for field semantics. The zero
// Query matches everything, ranked by overall score.
type Query = quality.Query

// QueryResult is an executed Query: the requested window of ranked
// assessments plus the pre-pagination match count.
type QueryResult = quality.QueryResult

// SortKey selects a query's ranking axis; see the builder's SortBy*
// methods.
type SortKey = quality.SortKey

// Cursor is an opaque keyset-pagination bound: QueryResult.Next of one
// page resumes the walk on the next via the builder's Resume (or
// Query.After). Unlike an offset, resuming from a cursor costs the same
// lean pass as the first page — the scan skips everything at or before the
// cursor's ranked position instead of re-selecting the prefix.
type Cursor = quality.Cursor

// WindowChange is one row's rank movement between two assessment rounds of
// a standing query's window; see DiffWindows.
type WindowChange = quality.WindowChange

// DiffWindows diffs one query's ranked window across two assessment rounds
// and returns only the rows that entered, left or moved — the delta the
// /api/v1/watch endpoint pushes to observers tracking a standing filtered
// feed. Rows holding their rank are omitted.
func DiffWindows(old, new []*Assessment) []WindowChange {
	return quality.DiffWindows(old, new)
}

// QueryBuilder composes a Query fluently. Builders are single-use: call
// Build once, at the end of the chain; the zero builder (NewQuery) yields
// the match-everything query.
type QueryBuilder struct {
	q Query
}

// NewQuery starts a query that matches every record, ranked by overall
// score.
func NewQuery() *QueryBuilder { return &QueryBuilder{} }

// IDs restricts candidates to the given record IDs (e.g. a search result
// set to re-rank by quality).
func (b *QueryBuilder) IDs(ids ...int) *QueryBuilder {
	b.q.IDs = append(b.q.IDs, ids...)
	return b
}

// Categories restricts candidates to records active in at least one of the
// given content categories.
func (b *QueryBuilder) Categories(cats ...string) *QueryBuilder {
	b.q.Categories = append(b.q.Categories, cats...)
	return b
}

// Kinds restricts source candidates by source kind ("blog", "forum",
// "review-site", "social-network").
func (b *QueryBuilder) Kinds(kinds ...string) *QueryBuilder {
	b.q.Kinds = append(b.q.Kinds, kinds...)
	return b
}

// MinScore keeps records whose overall weighted score clears the bar.
func (b *QueryBuilder) MinScore(v float64) *QueryBuilder {
	b.q.MinScore = v
	return b
}

// MinDimension keeps records whose average over one data-quality dimension
// clears the bar.
func (b *QueryBuilder) MinDimension(d Dimension, v float64) *QueryBuilder {
	if b.q.MinDimension == nil {
		b.q.MinDimension = map[Dimension]float64{}
	}
	b.q.MinDimension[d] = v
	return b
}

// MinAttribute keeps records whose average over one Web 2.0 attribute
// clears the bar.
func (b *QueryBuilder) MinAttribute(a Attribute, v float64) *QueryBuilder {
	if b.q.MinAttribute == nil {
		b.q.MinAttribute = map[Attribute]float64{}
	}
	b.q.MinAttribute[a] = v
	return b
}

// MinMeasure thresholds one normalized measure by its catalogue ID.
func (b *QueryBuilder) MinMeasure(id string, v float64) *QueryBuilder {
	if b.q.MinMeasure == nil {
		b.q.MinMeasure = map[string]float64{}
	}
	b.q.MinMeasure[id] = v
	return b
}

// SpamResistant keeps contributors whose relative reaction signal (Section
// 3.2's per-contribution reaction rates, near zero for spammers and bots)
// clears the bar. Contributor queries only.
func (b *QueryBuilder) SpamResistant(min float64) *QueryBuilder {
	b.q.MinSpamResistance = min
	return b
}

// SortByScore ranks by the overall weighted score (the default).
func (b *QueryBuilder) SortByScore() *QueryBuilder {
	b.q.Sort = SortKey{By: quality.SortByScore}
	return b
}

// SortByDimension ranks by one dimension's average score.
func (b *QueryBuilder) SortByDimension(d Dimension) *QueryBuilder {
	b.q.Sort = SortKey{By: quality.SortByDimension, Dimension: d}
	return b
}

// SortByAttribute ranks by one attribute's average score.
func (b *QueryBuilder) SortByAttribute(a Attribute) *QueryBuilder {
	b.q.Sort = SortKey{By: quality.SortByAttribute, Attribute: a}
	return b
}

// TopK bounds the ranked selection to the k best matches.
func (b *QueryBuilder) TopK(k int) *QueryBuilder {
	b.q.TopK = k
	return b
}

// Page windows the ranked matches for pagination.
//
// Deprecated shim for deep walks: page N re-selects the offset+limit best
// matches (the facade's per-snapshot spine cache hides that cost for
// corpus queries, but the uncached QueryRecords path pays it). Prefer
// Limit plus Resume — keyset pagination via the cursor each result
// returns in QueryResult.Next.
func (b *QueryBuilder) Page(offset, limit int) *QueryBuilder {
	b.q.Offset, b.q.Limit = offset, limit
	return b
}

// Limit bounds one page of results without an offset — the first page of
// a cursor walk; follow it with Resume(res.Next) for the pages after.
func (b *QueryBuilder) Limit(n int) *QueryBuilder {
	b.q.Limit = n
	return b
}

// Resume continues a keyset-paginated walk strictly after the cursor (the
// QueryResult.Next of the previous page). Mutually exclusive with a
// non-zero Page offset. A nil cursor is the first page.
func (b *QueryBuilder) Resume(c *Cursor) *QueryBuilder {
	b.q.After = c
	return b
}

// ScoresOnly skips the per-measure Raw/Normalized maps in the results —
// the lean projection the serving layer uses.
func (b *QueryBuilder) ScoresOnly() *QueryBuilder {
	b.q.Fields = quality.ProjectScores
	return b
}

// Build returns the composed Query.
func (b *QueryBuilder) Build() Query { return b.q }
