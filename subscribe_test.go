package informer

// Acceptance contracts of the facade's standing-query subscriptions
// (Corpus.Subscribe): shared one-evaluation-per-tick fan-out across
// subscriber counts and query spellings, subscriber churn racing Advance
// under -race, and slow-consumer resync semantics. The HTTP transports
// over the same registry are pinned by api_test.go, stream_equiv_test.go
// and internal/apiserve.

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestSubscribeSharedEvaluationPerTick pins the fan-out headline: 64
// subscribers of one canonical standing query (spelled three ways) share
// one group, one evaluation and one delta computation per Advance tick,
// and every subscriber receives the delta DiffWindows reports for the
// same two windows.
func TestSubscribeSharedEvaluationPerTick(t *testing.T) {
	c := New(Config{Seed: 193, NumSources: 60, NumUsers: 120})

	spellings := []Query{
		NewQuery().MinScore(0.4).TopK(10).Build(),
		NewQuery().MinScore(0.4).TopK(10).ScoresOnly().Build(), // projection is normalized away
		{MinScore: 0.4, TopK: 10},                              // literal spelling
	}
	win1, err := c.QuerySources(spellings[0])
	if err != nil {
		t.Fatal(err)
	}

	const n = 64
	subs := make([]*Subscription, n)
	for i := range subs {
		s, err := c.Subscribe(spellings[i%len(spellings)])
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		subs[i] = s
		if s.Since() != 1 {
			t.Fatalf("subscriber %d baseline %d, want 1", i, s.Since())
		}
	}
	st0 := c.subs.Stats()
	if st0.Groups != 1 || st0.Subscribers != n {
		t.Fatalf("stats %+v, want 1 group / %d subscribers", st0, n)
	}

	c.Advance(7, 1931)
	st1 := c.subs.Stats()
	if evals := st1.Evaluations - st0.Evaluations; evals != 1 {
		t.Fatalf("the tick cost %d standing-query evaluations for %d subscribers, want 1", evals, n)
	}

	win2, err := c.QuerySources(spellings[0])
	if err != nil {
		t.Fatal(err)
	}
	want := DiffWindows(win1.Items, win2.Items)
	for i, s := range subs {
		select {
		case ev := <-s.Events():
			if ev.Since != 1 || ev.Snapshot != 2 {
				t.Fatalf("subscriber %d event spans %d->%d, want 1->2", i, ev.Since, ev.Snapshot)
			}
			if !reflect.DeepEqual(ev.Changes, want) {
				t.Fatalf("subscriber %d delta diverges from DiffWindows:\n got  %+v\n want %+v", i, ev.Changes, want)
			}
		default:
			t.Fatalf("subscriber %d received no event for the tick", i)
		}
	}
}

// TestSubscribeBaselineWindowMatchesQuery pins that a subscription's
// baseline is exactly the standing query's current window.
func TestSubscribeBaselineWindowMatchesQuery(t *testing.T) {
	c := New(Config{Seed: 195, NumSources: 40, NumUsers: 100})
	q := NewQuery().MinScore(0.3).TopK(8).ScoresOnly().Build()
	win, err := c.QuerySources(q)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if len(sub.Window()) != len(win.Items) {
		t.Fatalf("baseline window %d rows, want %d", len(sub.Window()), len(win.Items))
	}
	for i := range win.Items {
		if sub.Window()[i].ID != win.Items[i].ID || sub.Window()[i].Score != win.Items[i].Score {
			t.Fatalf("baseline window diverges at %d", i)
		}
	}
	// Pagination positions are rejected at the facade too.
	if _, err := c.Subscribe(NewQuery().Page(3, 5).Build()); err == nil {
		t.Fatal("offset subscription must be rejected")
	}
	if _, err := c.Subscribe(NewQuery().Resume(&Cursor{}).Build()); err == nil {
		t.Fatal("cursor subscription must be rejected")
	}
}

// TestSubscribeConcurrentChurnDuringAdvance races subscriber churn —
// Subscribe, drain, Close — against a ticking writer under -race: every
// event chains contiguously from the subscription's own baseline, and
// every delta is non-trivial to verify against the version pair it spans.
func TestSubscribeConcurrentChurnDuringAdvance(t *testing.T) {
	c := New(Config{Seed: 197, NumSources: 30, NumUsers: 80})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := NewQuery().TopK(5 + g%3).Build()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := c.Subscribe(q)
				if err != nil {
					t.Error(err)
					return
				}
				since := sub.Since()
				for drained := 0; drained < 2; drained++ {
					select {
					case ev, ok := <-sub.Events():
						if !ok {
							t.Error("subscription dropped under churn (buffer should absorb two ticks)")
							return
						}
						if ev.Since != since || ev.Snapshot != ev.Since+1 {
							t.Errorf("since chain broke: %d->%d after %d", ev.Since, ev.Snapshot, since)
							return
						}
						since = ev.Snapshot
					case <-time.After(2 * time.Millisecond):
					}
				}
				sub.Close()
			}
		}(g)
	}
	for i := 0; i < 12; i++ {
		c.Advance(2, int64(1970+i))
	}
	close(stop)
	wg.Wait()
}

// TestSubscribeSlowConsumerResync drives a subscriber into overflow by
// never draining it: after the buffer fills, the subscription is dropped
// with ErrSlowConsumer — the in-process 410 Gone — and the observer
// recovers with a fresh read plus a fresh subscription.
func TestSubscribeSlowConsumerResync(t *testing.T) {
	c := New(Config{Seed: 199, NumSources: 30, NumUsers: 80})
	q := NewQuery().TopK(10).Build()
	sub, err := c.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}

	// Tick until the undrained buffer overflows (capacity 16; every
	// effective tick delivers an event, empty delta or not).
	for i := 0; i < 40 && c.subs.Stats().Overflows == 0; i++ {
		c.Advance(2, int64(1990+i))
	}
	if got := c.subs.Stats().Overflows; got != 1 {
		t.Fatalf("overflows = %d after 40 ticks, want 1", got)
	}
	// The buffered prefix stays readable and chains from the baseline;
	// then the channel closes with resync semantics.
	since := sub.Since()
	drained := 0
	for ev := range sub.Events() {
		if ev.Since != since {
			t.Fatalf("buffered chain broke: %d->%d after %d", ev.Since, ev.Snapshot, since)
		}
		since = ev.Snapshot
		drained++
	}
	if drained == 0 {
		t.Fatal("buffered events were lost on overflow")
	}
	if !errors.Is(sub.Err(), ErrSlowConsumer) {
		t.Fatalf("Err = %v, want ErrSlowConsumer", sub.Err())
	}

	// Recovery: one full read of the current round plus a new
	// subscription — exactly the 410 recovery of the HTTP transports.
	if _, err := c.QuerySources(q); err != nil {
		t.Fatal(err)
	}
	fresh, err := c.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.Since() != c.SnapshotVersion() {
		t.Fatalf("fresh subscription baseline %d, want current %d", fresh.Since(), c.SnapshotVersion())
	}
	c.Advance(2, 2099)
	select {
	case ev := <-fresh.Events():
		if ev.Since != fresh.Since() {
			t.Fatalf("recovered chain starts at %d, want %d", ev.Since, fresh.Since())
		}
	default:
		t.Fatal("recovered subscription received nothing")
	}
}
