package informer

// Facade-level contracts of incremental corpus advancement: an advanced
// corpus must be bit-identical to a full FromWorld rebuild of the same
// world under the corpus' construction seed; a zero-delta tick must be a
// true no-op (pointer-equal snapshot internals); and every reading method
// must stay safe while a writer ticks the world (run under -race in CI).

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"

	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/webgen"
)

// assertCorpusEquals checks every published number of two corpora over the
// same world: rankings (with all raw/normalised/axis maps), benchmarks,
// source scores, sentiment indicators and trending terms.
func assertCorpusEquals(t *testing.T, inc, full *Corpus) {
	t.Helper()
	ri, rf := inc.RankSources(), full.RankSources()
	if !reflect.DeepEqual(ri, rf) {
		for i := range ri {
			if !reflect.DeepEqual(ri[i], rf[i]) {
				t.Fatalf("source ranking differs at %d:\n inc  %+v\n full %+v", i, ri[i], rf[i])
			}
		}
		t.Fatalf("source rankings differ in length: %d vs %d", len(ri), len(rf))
	}
	if !reflect.DeepEqual(inc.RankContributors(), full.RankContributors()) {
		t.Fatal("contributor rankings differ")
	}
	for _, m := range quality.SourceMeasures() {
		bi, iok := inc.state.Load().env.Sources.Benchmark(m.ID)
		bf, fok := full.state.Load().env.Sources.Benchmark(m.ID)
		if iok != fok || bi != bf {
			t.Fatalf("benchmark %s: %+v vs %+v", m.ID, bi, bf)
		}
	}
	if !reflect.DeepEqual(inc.state.Load().env.SourceScores, full.state.Load().env.SourceScores) {
		t.Fatal("source score joins differ")
	}
	si, sf := inc.SentimentByCategory(), full.SentimentByCategory()
	if !reflect.DeepEqual(si, sf) {
		t.Fatalf("sentiment indicators differ:\n inc  %+v\n full %+v", si, sf)
	}
	for _, cat := range inc.World().Categories {
		if !reflect.DeepEqual(inc.TrendingTerms(cat, 8), full.TrendingTerms(cat, 8)) {
			t.Fatalf("trending terms differ for %q", cat)
		}
	}
}

func TestAdvanceIncrementalMatchesRebuild(t *testing.T) {
	world := webgen.Generate(webgen.Config{Seed: 901, NumSources: 50, NumUsers: 150, CommentText: true})
	c := FromWorld(world, DomainOfInterest{}, 901)
	// Touch the scan before ticking so the per-source invalidation path is
	// exercised (not just a cold rebuild).
	if len(c.SentimentByCategory()) == 0 {
		t.Fatal("corpus has no sentiment to begin with")
	}

	c.Advance(5, 9001)
	c.Advance(3, 9002) // second tick stacks repair on repair

	full := FromWorld(c.World(), c.DI, 901)
	assertCorpusEquals(t, c, full)
}

// TestAdvanceFullyDirtyMatchesRebuild drives a tick big enough to touch
// every source, pinning the threshold (full re-sort) path end to end.
func TestAdvanceFullyDirtyMatchesRebuild(t *testing.T) {
	world := webgen.Generate(webgen.Config{Seed: 903, NumSources: 30, NumUsers: 90, CommentText: true})
	c := FromWorld(world, DomainOfInterest{}, 903)
	c.SentimentByCategory()

	before := c.World()
	c.Advance(120, 9003)
	after := c.World()
	dirty := 0
	for i := range after.Sources {
		if after.Sources[i] != before.Sources[i] {
			dirty++
		}
	}
	if dirty != len(after.Sources) {
		t.Fatalf("tick dirtied %d/%d sources; pick a bigger tick", dirty, len(after.Sources))
	}

	full := FromWorld(after, c.DI, 903)
	assertCorpusEquals(t, c, full)
}

func TestAdvanceZeroDeltaIsNoop(t *testing.T) {
	c := New(Config{Seed: 905, NumSources: 20})
	before := c.state.Load()
	if got := c.Advance(0, 9005); got != c {
		t.Fatal("Advance must return the receiver")
	}
	if c.state.Load() != before {
		t.Fatal("zero-delta tick must keep the snapshot pointer-identical")
	}
	if c.World() != before.world {
		t.Fatal("zero-delta tick must not replace the world")
	}
}

// TestAdvanceNoReevaluationOnZeroDelta pins "no re-evaluation" directly:
// the assessor, records and env survive a zero-day tick untouched.
func TestAdvanceNoReevaluationOnZeroDelta(t *testing.T) {
	c := New(Config{Seed: 907, NumSources: 15})
	env := c.state.Load().env
	c.Advance(0, 9007)
	if c.state.Load().env != env {
		t.Fatal("zero-delta tick rebuilt the environment")
	}
}

// TestAdvanceOldSnapshotStaysValid pins the reader guarantee: a reader
// holding pre-advance results is unaffected by a tick.
func TestAdvanceOldSnapshotStaysValid(t *testing.T) {
	c := New(Config{Seed: 909, NumSources: 25, CommentText: true})
	oldWorld := c.World()
	oldRanked := c.RankSources()
	oldSenti := c.SentimentByCategory()

	c.Advance(30, 9009)

	// Re-assess the retained old world from scratch: it must be untouched.
	fullOld := FromWorld(oldWorld, c.DI, 909)
	if !reflect.DeepEqual(fullOld.RankSources(), oldRanked) {
		t.Fatal("pre-advance world mutated by the tick")
	}
	if !reflect.DeepEqual(fullOld.SentimentByCategory(), oldSenti) {
		t.Fatal("pre-advance sentiment mutated by the tick")
	}
}

// skewedTicks draws a hot/tail per-source tick schedule: ~90% of the
// polls land on the hottest ~5% of sources (by open discussions, the
// generator's churn capacity), the rest scatter over the tail — the
// bursty-few/quiet-many distribution the adaptive scheduler exploits.
func skewedTicks(rng *rand.Rand, world *webgen.World, n int) []int {
	ids := make([]int, 0, len(world.Sources))
	for _, s := range world.Sources {
		ids = append(ids, s.ID)
	}
	sort.Slice(ids, func(i, j int) bool {
		oi, oj := world.Source(ids[i]).OpenDiscussions(), world.Source(ids[j]).OpenDiscussions()
		if oi != oj {
			return oi > oj
		}
		return ids[i] < ids[j]
	})
	hot := ids[:1+len(ids)/20]
	ticks := make([]int, n)
	for i := range ticks {
		if rng.Intn(10) < 9 {
			ticks[i] = hot[rng.Intn(len(hot))]
		} else {
			ticks[i] = ids[rng.Intn(len(ids))]
		}
	}
	return ticks
}

// TestIngestDrainMatchesSequentialAndRebuild is the tentpole's randomized
// acceptance pin at the facade: a skewed run of per-source Ingest ticks
// followed by ONE DrainTick (one coalesced UpdateRows repair, one
// published round) must be bit-identical both to publishing every tick as
// its own assessment round and to a cold rebuild of the final world — and
// the drain must feed the subscription registry exactly one round.
func TestIngestDrainMatchesSequentialAndRebuild(t *testing.T) {
	for run := 0; run < 3; run++ {
		world := webgen.Generate(webgen.Config{
			Seed: int64(921 + run), NumSources: 40, NumUsers: 120,
			CommentText: true, ChurnScale: 3,
		})
		inc := FromWorld(world, DomainOfInterest{}, 921)
		seq := FromWorld(world, DomainOfInterest{}, 921)
		inc.SentimentByCategory() // warm the scan: exercise per-source invalidation

		sub, err := inc.Subscribe(NewQuery().TopK(10).Build())
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()

		rng := rand.New(rand.NewSource(int64(5200 + run)))
		buffered := 0
		for i, id := range skewedTicks(rng, world, 24) {
			seed := int64(6000 + run*100 + i)
			d := inc.Ingest(id, seed)
			if !d.Empty() {
				buffered++
			}
			// The sequential twin publishes every tick as its own round.
			seq.Ingest(id, seed)
			seq.DrainTick()
		}
		if buffered == 0 {
			t.Fatal("skewed schedule produced no activity; raise ChurnScale")
		}
		ticks, comments := inc.PendingIngest()
		if ticks != buffered || comments == 0 {
			t.Fatalf("PendingIngest = (%d, %d), want (%d, >0)", ticks, comments, buffered)
		}
		if got := inc.SnapshotVersion(); got != 1 {
			t.Fatalf("Ingest published a round: version %d", got)
		}

		n, published := inc.DrainTick()
		if !published || n != buffered {
			t.Fatalf("DrainTick = (%d, %v), want (%d, true)", n, published, buffered)
		}
		if got := inc.SnapshotVersion(); got != 2 {
			t.Fatalf("one drain must publish exactly one round: version %d", got)
		}
		select {
		case ev := <-sub.Events():
			if ev.Snapshot != 2 {
				t.Fatalf("subscriber saw round %d, want 2", ev.Snapshot)
			}
		default:
			t.Fatal("drain published no subscription round")
		}
		select {
		case <-sub.Events():
			t.Fatal("drain fanned out more than one round")
		default:
		}
		if n, p := inc.DrainTick(); n != 0 || p {
			t.Fatal("draining an empty accumulator must publish nothing")
		}

		// Bit-identity: coalesced drain vs per-tick publication vs rebuild.
		assertCorpusEquals(t, inc, seq)
		full := FromWorld(inc.World(), inc.DI, 921)
		assertCorpusEquals(t, inc, full)
	}
}

// TestAdvanceFoldsPendingIngest pins the composition rule: a global tick
// arriving while per-source ingestion is buffered folds the pending span
// into its own round — one publication, nothing abandoned, nothing
// double-applied — and stays bit-identical to a rebuild.
func TestAdvanceFoldsPendingIngest(t *testing.T) {
	world := webgen.Generate(webgen.Config{
		Seed: 931, NumSources: 35, NumUsers: 100, CommentText: true, ChurnScale: 3,
	})
	c := FromWorld(world, DomainOfInterest{}, 931)
	rng := rand.New(rand.NewSource(5300))
	buffered := 0
	for i, id := range skewedTicks(rng, world, 12) {
		if !c.Ingest(id, int64(6500+i)).Empty() {
			buffered++
		}
	}
	if buffered == 0 {
		t.Fatal("no ingestion buffered; raise ChurnScale")
	}

	c.Advance(2, 6600)
	if got := c.SnapshotVersion(); got != 2 {
		t.Fatalf("Advance over pending ingestion published %d rounds, want 1", got-1)
	}
	if ticks, _ := c.PendingIngest(); ticks != 0 {
		t.Fatalf("Advance left %d ticks buffered", ticks)
	}
	if d := c.LastDelta(); d == nil || !d.EpochMoved() {
		t.Fatal("folded round must carry the epoch movement")
	}
	assertCorpusEquals(t, c, FromWorld(c.World(), c.DI, 931))

	// Same-day flavor on top of fresh ingestion.
	for i, id := range skewedTicks(rng, c.World(), 8) {
		c.Ingest(id, int64(6700+i))
	}
	c.AdvanceSameDay(6800, nil)
	if ticks, _ := c.PendingIngest(); ticks != 0 {
		t.Fatal("AdvanceSameDay left ingestion buffered")
	}
	assertCorpusEquals(t, c, FromWorld(c.World(), c.DI, 931))
}

// TestAdvanceConcurrentReaders serves every reading surface while a writer
// ticks the world repeatedly; run with -race this pins the snapshot-swap
// guarantee of the tentpole.
func TestAdvanceConcurrentReaders(t *testing.T) {
	c := New(Config{Seed: 911, NumSources: 25, NumUsers: 80, CommentText: true})
	n := len(c.RankSources())
	handler := c.Handler()
	panelHandler := c.PanelHandler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	reader := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	reader(func() {
		if len(c.RankSources()) != n {
			t.Error("short ranking during advance")
		}
	})
	reader(func() { c.RankContributors() })
	reader(func() { c.SentimentByCategory() })
	reader(func() { c.TrendingTerms("prerequisites", 5) })
	reader(func() { c.SourceReport() })
	reader(func() { c.AssessSource(3) })
	reader(func() { c.Search("hotel milan", 5) })
	reader(func() {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sitemap.txt", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("sitemap status %d during advance", rec.Code)
		}
	})
	reader(func() {
		rec := httptest.NewRecorder()
		panelHandler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?host="+c.World().Sources[0].Host, nil))
	})

	for i := 0; i < 6; i++ {
		c.Advance(2, int64(9100+i))
	}
	close(stop)
	wg.Wait()

	full := FromWorld(c.World(), c.DI, 911)
	assertCorpusEquals(t, c, full)
}
