package informer

// The correlation engine's facade-level acceptance pin: a corpus whose
// dedup index and story clusters were maintained incrementally — through
// a randomized mix of Advance, AdvanceSameDay and per-source Ingest +
// DrainTick — is byte-identical to one rebuilt from scratch over the
// final world, at shard counts {1, 7} and under the unsharded
// construction path. "Byte-identical" covers the full story sets (IDs,
// members, representatives, freshness) and the src.originality measure
// column all the way through assessment.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"testing"

	"github.com/informing-observers/informer/internal/webgen"
)

// storySnapshot renders a corpus' stories as comparable data.
func storySnapshot(c *Corpus) []Story {
	ss := c.Stories()
	out := make([]Story, 0, ss.Len())
	for _, st := range ss.All() {
		out = append(out, *st)
	}
	return out
}

// originalityColumn extracts the src.originality raw value per source ID
// (sources where the measure is undefined are absent).
func originalityColumn(c *Corpus) map[int]float64 {
	out := map[int]float64{}
	for _, r := range c.SourceRecords() {
		if a, ok := c.AssessSource(r.ID); ok {
			if v, defined := a.Raw["src.originality"]; defined {
				out[r.ID] = v
			}
		}
	}
	return out
}

func TestCorrelationIncrementalEquivalenceRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized equivalence suite skipped in -short mode")
	}
	for _, seed := range []int64{41, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			world := webgen.Generate(webgen.Config{
				Seed: seed, NumSources: 70, CommentText: true, SyndicationRate: 0.2,
			})
			// The incrementally maintained corpora: unsharded plus the
			// sharded engine at a boundary-rich prime.
			live := map[string]*Corpus{
				"unsharded": FromWorld(world, DomainOfInterest{}, seed),
				"shards=1":  FromWorldSharded(world, DomainOfInterest{}, seed, 1),
				"shards=7":  FromWorldSharded(world, DomainOfInterest{}, seed, 7),
			}
			rng := rand.New(rand.NewSource(seed * 997))
			for tick := 0; tick < 8; tick++ {
				op := rng.Intn(3)
				opSeed := rng.Int63n(1 << 30)
				days := 1 + rng.Intn(2)
				nIngest := 1 + rng.Intn(4)
				ingestIDs := make([]int, nIngest)
				for i := range ingestIDs {
					ingestIDs[i] = rng.Intn(len(world.Sources))
				}
				for _, c := range live {
					switch op {
					case 0:
						c.Advance(days, opSeed)
					case 1:
						c.AdvanceSameDay(opSeed, nil)
					default:
						for _, id := range ingestIDs {
							c.Ingest(id, opSeed)
						}
						c.DrainTick()
					}
				}

				// Every live corpus agrees with a fresh rebuild of its
				// own current world, and all live corpora agree with
				// each other.
				var wantStories []Story
				var wantOrig map[int]float64
				first := true
				for name, c := range live {
					rebuilt := FromWorld(c.World(), DomainOfInterest{}, seed)
					gotStories, rebuiltStories := storySnapshot(c), storySnapshot(rebuilt)
					if !reflect.DeepEqual(gotStories, rebuiltStories) {
						t.Fatalf("tick %d (%s): incremental stories diverge from rebuild (%d vs %d)", tick, name, len(gotStories), len(rebuiltStories))
					}
					gotOrig, rebuiltOrig := originalityColumn(c), originalityColumn(rebuilt)
					if !reflect.DeepEqual(gotOrig, rebuiltOrig) {
						t.Fatalf("tick %d (%s): incremental src.originality diverges from rebuild", tick, name)
					}
					if first {
						wantStories, wantOrig, first = gotStories, gotOrig, false
						continue
					}
					if !reflect.DeepEqual(gotStories, wantStories) {
						t.Fatalf("tick %d (%s): stories diverge across engines", tick, name)
					}
					if !reflect.DeepEqual(gotOrig, wantOrig) {
						t.Fatalf("tick %d (%s): src.originality diverges across engines", tick, name)
					}
				}
			}
		})
	}
}

// TestStoriesEndpointServesClusters is the API-level smoke pin: the
// /api/v1/stories listing is non-empty over a syndicating corpus, pages
// by cursor without overlap or loss, and every item carries its members
// ranked by quality score.
func TestStoriesEndpointServesClusters(t *testing.T) {
	c := New(Config{Seed: 55, NumSources: 60, CommentText: true, SyndicationRate: 0.25})
	total := c.Stories().Query(StoryQuery{Limit: 1 << 20}).Total
	if total == 0 {
		t.Fatal("syndicating corpus produced no stories")
	}
	h := c.APIHandler()

	seen := map[int]bool{}
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > total {
			t.Fatal("cursor walk did not terminate")
		}
		target := "/api/v1/stories?k=3"
		if cursor != "" {
			target += "&cursor=" + cursor
		}
		rec := apiGet(t, h, target, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", target, rec.Code, rec.Body.String())
		}
		var env struct {
			Total      int    `json:"total"`
			NextCursor string `json:"next_cursor"`
			Items      []struct {
				ID      int    `json:"id"`
				Title   string `json:"title"`
				Members []struct {
					SourceID int     `json:"source_id"`
					Name     string  `json:"name"`
					Score    float64 `json:"score"`
				} `json:"members"`
			} `json:"items"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("bad envelope: %v", err)
		}
		if env.Total != total {
			t.Fatalf("page total %d, want %d", env.Total, total)
		}
		for _, it := range env.Items {
			if seen[it.ID] {
				t.Fatalf("story %d served twice across pages", it.ID)
			}
			seen[it.ID] = true
			if len(it.Members) < 2 {
				t.Fatalf("story %d has %d members, want >= 2", it.ID, len(it.Members))
			}
			prev := 2.0
			for _, m := range it.Members {
				if m.Score > prev {
					t.Fatalf("story %d members not ranked by score desc", it.ID)
				}
				prev = m.Score
				if m.Name == "" {
					t.Fatalf("story %d member %d has no name", it.ID, m.SourceID)
				}
			}
		}
		if env.NextCursor == "" {
			break
		}
		cursor = env.NextCursor
	}
	if len(seen) != total {
		t.Fatalf("cursor walk served %d stories, listing has %d", len(seen), total)
	}
}
