package informer

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	return New(Config{Seed: 77, NumSources: 30, NumUsers: 90, CommentText: true})
}

func TestNewCorpusDefaults(t *testing.T) {
	c := New(Config{NumSources: 10})
	if len(c.World().Sources) != 10 {
		t.Fatalf("sources = %d", len(c.World().Sources))
	}
	if len(c.DI.Categories) != 6 {
		t.Errorf("DI should default to the world's categories: %v", c.DI.Categories)
	}
}

func TestRankSourcesFacade(t *testing.T) {
	c := testCorpus(t)
	ranked := c.RankSources()
	if len(ranked) != 30 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatal("not sorted")
		}
	}
	a, ok := c.AssessSource(ranked[0].ID)
	if !ok || a.Score != ranked[0].Score {
		t.Error("AssessSource disagrees with RankSources")
	}
	if _, ok := c.AssessSource(-1); ok {
		t.Error("negative id should miss")
	}
}

func TestRankContributorsFacade(t *testing.T) {
	c := testCorpus(t)
	ranked := c.RankContributors()
	if len(ranked) != 90 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if _, ok := c.AssessContributor(0); !ok {
		t.Error("AssessContributor(0) should exist")
	}
	if _, ok := c.AssessContributor(9999); ok {
		t.Error("out-of-range contributor should miss")
	}
}

func TestInfluencersFacade(t *testing.T) {
	c := testCorpus(t)
	infs := c.Influencers(InfluencerOptions{Strategy: Combined, TopK: 5})
	if len(infs) == 0 || len(infs) > 5 {
		t.Fatalf("influencers = %d", len(infs))
	}
}

func TestSearchFacade(t *testing.T) {
	c := testCorpus(t)
	res := c.Search("hotel metro milan", 5)
	if len(res) == 0 {
		t.Skip("no hits for this seed")
	}
	if len(res) > 5 {
		t.Errorf("k not respected")
	}
}

func TestSentimentByCategory(t *testing.T) {
	c := testCorpus(t)
	ind := c.SentimentByCategory()
	if len(ind) == 0 {
		t.Fatal("no indicators")
	}
	for cat, i := range ind {
		if i.Mean < -1 || i.Mean > 1 {
			t.Errorf("%s mean %v out of range", cat, i.Mean)
		}
		if i.N == 0 {
			t.Errorf("%s has zero comments", cat)
		}
	}
}

func TestMashupFacade(t *testing.T) {
	c := testCorpus(t)
	comp := `{
	  "name": "facade-demo",
	  "components": [
	    {"id": "src", "type": "comments", "params": {"top_sources": 5}},
	    {"id": "senti", "type": "sentiment"},
	    {"id": "view", "type": "indicator-viewer", "title": "Indicators"}
	  ],
	  "wires": [
	    {"from": "src.out", "to": "senti.in"},
	    {"from": "senti.indicators", "to": "view.in"}
	  ]
	}`
	d, err := c.RunMashup([]byte(comp))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := d.View("view"); !ok || len(v.Items) == 0 {
		t.Fatal("no indicators in dashboard")
	}
	if !strings.Contains(d.Render(), "Indicators") {
		t.Error("render incomplete")
	}
	if _, err := c.RunMashup([]byte("{")); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestEmitSelectFacade(t *testing.T) {
	c := testCorpus(t)
	comp := `{
	  "name": "sel",
	  "components": [
	    {"id": "src", "type": "comments", "params": {"top_sources": 3}},
	    {"id": "sel", "type": "event-filter", "params": {"item_key": "author_id", "payload_key": "author_id"}},
	    {"id": "view", "type": "list-viewer"}
	  ],
	  "wires": [
	    {"from": "src.out", "to": "sel.in"},
	    {"from": "sel.out", "to": "view.in"}
	  ],
	  "sync": [{"source": "view", "target": "sel"}]
	}`
	rt, err := c.NewMashup([]byte(comp))
	if err != nil {
		t.Fatal(err)
	}
	d, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := d.View("view")
	if len(v.Items) == 0 {
		t.Skip("empty stream for this seed")
	}
	before := len(v.Items)
	d, err = EmitSelect(rt, "view", v.Items[0])
	if err != nil {
		t.Fatal(err)
	}
	v, _ = d.View("view")
	if len(v.Items) == 0 || len(v.Items) > before {
		t.Errorf("selection should narrow: %d -> %d", before, len(v.Items))
	}
}

func TestCrawlRoundTrip(t *testing.T) {
	c := New(Config{Seed: 78, NumSources: 8, CommentText: true})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	records, err := c.Crawl(context.Background(), ts.URL, CrawlOptions{FetchFeeds: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 8 {
		t.Fatalf("crawled %d sources", len(records))
	}
	ranked := c.AssessRecords(records)
	if len(ranked) != 8 {
		t.Fatalf("assessed %d", len(ranked))
	}
	for _, a := range ranked {
		if a.Score < 0 || a.Score > 1 {
			t.Errorf("score %v out of range", a.Score)
		}
	}
}

func TestPanelHandlerFacade(t *testing.T) {
	c := New(Config{Seed: 79, NumSources: 4})
	ts := httptest.NewServer(c.PanelHandler())
	defer ts.Close()
	resp, err := httpGet(ts.URL + "/metrics?host=" + c.World().Sources[0].Host)
	if err != nil {
		t.Fatal(err)
	}
	if resp != 200 {
		t.Errorf("status %d", resp)
	}
}

func TestMicroblogFacade(t *testing.T) {
	ds, records := GenerateMicroblog(MicroblogConfig{Seed: 3, NumAccounts: 100})
	if len(ds.Accounts) != 100 || len(records) != 100 {
		t.Fatalf("dataset sizes: %d accounts, %d records", len(ds.Accounts), len(records))
	}
	ranked := AssessMicroblog(records)
	if len(ranked) != 100 {
		t.Fatalf("ranked %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatal("not sorted")
		}
	}
}

// httpGet returns just the status code of a GET.
func httpGet(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func TestAdvanceMonitoringLoop(t *testing.T) {
	c := New(Config{Seed: 81, NumSources: 40, CommentText: true})
	rep1 := c.SourceReport()
	if len(rep1.Entries) != 40 {
		t.Fatalf("report entries = %d", len(rep1.Entries))
	}

	c2 := c.Advance(30, 811)
	rep2 := c2.SourceReport()
	if !rep2.GeneratedAt.After(rep1.GeneratedAt) {
		t.Error("advanced report should carry a later timestamp")
	}
	shift := RankShift(rep1, rep2)
	if len(shift) != 40 {
		t.Fatalf("shift covers %d sources", len(shift))
	}
	moved := 0
	for _, d := range shift {
		if d != 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("a month of fresh activity should move at least one rank")
	}

	// Round-trip the report through JSON.
	var buf bytes.Buffer
	if err := rep2.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(rep2.Entries) {
		t.Error("report round trip lost entries")
	}
}

func TestTrendingTerms(t *testing.T) {
	c := New(Config{Seed: 82, NumSources: 50, CommentText: true})
	terms := c.TrendingTerms("prerequisites", 8)
	if len(terms) == 0 {
		t.Fatal("no trending terms")
	}
	if len(terms) > 8 {
		t.Fatalf("k not respected: %d", len(terms))
	}
	// The category's marker vocabulary should buzz against the corpus.
	markers := map[string]bool{
		"hotel": true, "transport": true, "metro": true, "airport": true,
		"taxi": true, "wifi": true, "accommodation": true, "restaurant": true,
		"prerequisites": true,
	}
	hits := 0
	for _, tm := range terms {
		if markers[tm.Word] {
			hits++
		}
		if tm.Score <= 0 {
			t.Errorf("non-positive buzz score for %q", tm.Word)
		}
	}
	if hits < 3 {
		t.Errorf("only %d/8 trending terms are category markers: %v", hits, terms)
	}
}
