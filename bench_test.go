package informer

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the published statistics), plus ablation
// benchmarks for the design choices called out in DESIGN.md section 5.
// Ablations attach their quality outcomes as custom benchmark metrics so
// `go test -bench` doubles as the ablation report.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/correlate"
	"github.com/informing-observers/informer/internal/deliver"
	"github.com/informing-observers/informer/internal/experiments"
	"github.com/informing-observers/informer/internal/mashup"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/search"
	"github.com/informing-observers/informer/internal/sentiment"
	"github.com/informing-observers/informer/internal/services"
	"github.com/informing-observers/informer/internal/stats"
	"github.com/informing-observers/informer/internal/webgen"
)

// benchWorkbench is a down-scaled (but statistically live) workbench shared
// by the per-iteration experiment benchmarks.
var (
	benchWBOnce sync.Once
	benchWB     *experiments.Workbench
)

func sharedBenchWB() *experiments.Workbench {
	benchWBOnce.Do(func() {
		// Full corpus size (query selectivity is calibrated against it);
		// a reduced query workload keeps iterations fast.
		benchWB = experiments.NewWorkbench(experiments.Options{
			Seed:       42,
			NumQueries: 60,
		})
	})
	return benchWB
}

// BenchmarkExpRankingComparison regenerates the Section 4.1 ranking
// comparison (per-measure Kendall tau + rank-distance distribution).
func BenchmarkExpRankingComparison(b *testing.B) {
	wb := sharedBenchWB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp41(wb)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanDistance, "mean-rank-distance")
	}
}

// BenchmarkExpFactorAnalysis regenerates Table 3 (PCA componentization +
// regression of the baseline rank on component scores).
func BenchmarkExpFactorAnalysis(b *testing.B) {
	wb := sharedBenchWB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable3(wb)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Components) != 3 {
			b.Fatalf("components = %d", len(r.Components))
		}
	}
}

// BenchmarkExpANOVA regenerates Table 4 (ANOVA + Bonferroni pairwise
// comparisons over the 813-account microblog dataset).
func BenchmarkExpANOVA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable4(3, 813)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 5 {
			b.Fatal("incomplete table")
		}
	}
}

// BenchmarkExpMashupPipeline regenerates Figure 1: composition parse,
// instantiation, dataflow run, and one selection event.
func BenchmarkExpMashupPipeline(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 99, NumSources: 60, CommentText: true})
	panel := analytics.Build(world, 100)
	di := quality.DomainOfInterest{Categories: world.Categories}
	env := services.NewEnv(world, panel, di)
	reg := services.NewRegistry(env)
	comp, err := mashup.ParseComposition([]byte(experiments.Figure1CompositionJSON))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := mashup.NewRuntime(comp, reg)
		if err != nil {
			b.Fatal(err)
		}
		d, err := rt.Run()
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := d.View("infList"); ok && len(v.Items) > 0 {
			if _, err := rt.Emit(mashup.Event{Source: "infList", Name: "select", Payload: v.Items[0]}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExpTable1Measures regenerates the Table 1 measure suite over an
// HTTP-crawled corpus.
func BenchmarkExpTable1Measures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable1(7, 20)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Measures) != 20 {
			b.Fatal("incomplete measures")
		}
	}
}

// BenchmarkExpTable2Measures regenerates the Table 2 measure suite over
// the microblog dataset.
func BenchmarkExpTable2Measures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable2(5, 813)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Measures) != 15 {
			b.Fatal("incomplete measures")
		}
	}
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationNormalization contrasts the paper-style quantile
// benchmarks with plain min-max normalisation. The custom metric is the
// Spearman correlation between the two rankings: high correlation means
// the choice is mostly cosmetic on clean data; it diverges once outliers
// dominate (hence the winsorised default).
func BenchmarkAblationNormalization(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 5, NumSources: 300})
	panel := analytics.Build(world, 6)
	records := quality.SourceRecordsFromWorld(world, panel)
	di := quality.DomainOfInterest{Categories: world.Categories}
	for _, cfg := range []struct {
		name string
		opts *quality.AssessorOptions
	}{
		{"quantile-benchmarks", nil},
		{"plain-minmax", &quality.AssessorOptions{PlainMinMax: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var ranked []*quality.Assessment
			for i := 0; i < b.N; i++ {
				a := quality.NewSourceAssessor(records, di, cfg.opts)
				ranked = a.Rank(records)
			}
			if len(ranked) > 0 {
				b.ReportMetric(ranked[0].Score, "top-score")
			}
		})
	}
}

// BenchmarkAblationInfluencerStrategy quantifies Section 3.2's spam
// argument: share of spam bots in the top-10 influencer list per strategy
// on a 20%-spam corpus.
func BenchmarkAblationInfluencerStrategy(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 11, NumSources: 80, NumUsers: 300, SpamRate: 0.2})
	records := quality.ContributorRecordsFromWorld(world)
	assessor := quality.NewContributorAssessor(records, quality.DomainOfInterest{Categories: world.Categories}, nil)
	for _, strat := range []quality.InfluencerStrategy{quality.ByActivity, quality.ByRelative, quality.Combined} {
		b.Run(strat.String(), func(b *testing.B) {
			var spamShare float64
			for i := 0; i < b.N; i++ {
				top := quality.Influencers(assessor, records, quality.InfluencerOptions{
					Strategy: strat,
					TopK:     10,
				})
				spam := 0
				for _, inf := range top {
					if inf.Record.Spammer {
						spam++
					}
				}
				spamShare = float64(spam) / float64(len(top))
			}
			b.ReportMetric(spamShare, "spam-share-top10")
		})
	}
}

// BenchmarkAblationSearchTrafficPrior removes the baseline's traffic prior
// and reports the pooled Spearman correlation between a source's panel
// visitors and its mean search position goodness: with the prior the
// baseline behaves like Google (traffic predicts positioning, the Table 3
// finding); without it the correlation collapses.
func BenchmarkAblationSearchTrafficPrior(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 42, NumSources: 600})
	panel := analytics.Build(world, 43)
	for _, cfg := range []struct {
		name              string
		traffic, pagerank float64
	}{
		// PageRank rides on the preferential-attachment link graph, so it
		// is itself a traffic proxy; the ablation removes both.
		{"with-traffic-prior", 0.45, 0.35},
		{"without-traffic-prior", 1e-9, 1e-9},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			engine := search.NewEngine(world, panel, search.Config{
				Seed:           44,
				TrafficWeight:  cfg.traffic,
				PageRankWeight: cfg.pagerank,
				NoiseSigma:     0.9,
			})
			b.ResetTimer()
			var rho float64
			for i := 0; i < b.N; i++ {
				rho = trafficPositionCorrelation(engine, world, panel)
			}
			b.ReportMetric(rho, "visitors-vs-goodness-rho")
		})
	}
}

// trafficPositionCorrelation pools search results over a query workload
// and correlates panel visitors with rank goodness.
func trafficPositionCorrelation(engine *search.Engine, world *webgen.World, panel *analytics.Panel) float64 {
	kinds := []webgen.SourceKind{webgen.Blog, webgen.Forum}
	var visitors, goodness []float64
	for qi := 0; qi < 40; qi++ {
		q := fmt.Sprintf("%s %s", world.Categories[qi%6], world.Config.Locations[qi%len(world.Config.Locations)])
		results := engine.SearchKinds(q, 20, kinds)
		for i, r := range results {
			m, _ := panel.BySource(r.SourceID)
			visitors = append(visitors, m.DailyVisitors)
			goodness = append(goodness, float64(len(results)-i))
		}
	}
	rho, err := stats.Spearman(visitors, goodness)
	if err != nil {
		return 0
	}
	return rho
}

// BenchmarkAblationVarimax contrasts factor analysis with and without
// varimax rotation; the custom metric is component purity — the share of
// the ten Table 3 measures assigned to the paper's component.
func BenchmarkAblationVarimax(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n, p := 400, 10
	data := stats.NewMatrix(n, p)
	truth := make([]int, p)
	for j := 0; j < p; j++ {
		truth[j] = j % 3
	}
	for i := 0; i < n; i++ {
		f := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		for j := 0; j < p; j++ {
			// Cross-loadings onto the next factor make the unrotated
			// solution genuinely ambiguous.
			cross := f[(truth[j]+1)%3]
			data.Set(i, j, f[truth[j]]+0.55*cross+0.8*rng.NormFloat64())
		}
	}
	for _, rot := range []bool{false, true} {
		name := "without-varimax"
		if rot {
			name = "with-varimax"
		}
		b.Run(name, func(b *testing.B) {
			var purity float64
			for i := 0; i < b.N; i++ {
				fa, err := stats.PrincipalComponents(data, stats.PCAOptions{Components: 3, Varimax: rot})
				if err != nil {
					b.Fatal(err)
				}
				purity = componentPurity(fa.Assignment, truth)
			}
			b.ReportMetric(purity, "component-purity")
		})
	}
}

// componentPurity computes the best-case agreement between an assignment
// and the ground truth over all label permutations of 3 components.
func componentPurity(got, want []int) float64 {
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	best := 0
	for _, p := range perms {
		match := 0
		for i := range got {
			if p[got[i]] == want[i] {
				match++
			}
		}
		if match > best {
			best = match
		}
	}
	return float64(best) / float64(len(got))
}

// --- Micro-benchmarks of the computational kernels ---

func BenchmarkKendallTau(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.KendallTau(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCA10x1000(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := stats.NewMatrix(1000, 10)
	for i := range data.Data {
		data.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.PrincipalComponents(data, stats.PCAOptions{Components: 3, Varimax: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOLS3x1000(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := stats.NewMatrix(1000, 3)
	y := make([]float64, 1000)
	for i := 0; i < 1000; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.OLS(y, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankSourcesLarge measures the full assessment hot path — the
// corpus-wide Table 1 evaluation, normalisation and ranking — at web scale
// (2000 sources). This is the perf-trajectory headline number; CHANGES.md
// records its history.
func BenchmarkRankSourcesLarge(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 21, NumSources: 2000})
	panel := analytics.Build(world, 22)
	records := quality.SourceRecordsFromWorld(world, panel)
	di := quality.DomainOfInterest{Categories: world.Categories}
	assessor := quality.NewSourceAssessor(records, di, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked := assessor.Rank(records)
		if len(ranked) != len(records) {
			b.Fatal("short ranking")
		}
	}
}

// BenchmarkQueryTopK measures the filtered top-k serving path against the
// same corpus as BenchmarkRankSourcesLarge: a min-score predicate plus a
// k=10 bound executed below the ranking (lean matrix scan + bounded heap +
// 10 materializations) instead of materializing and sorting all 2000
// assessments. The acceptance bar of the query-API PR is ≥2x fewer ns/op
// and fewer allocs than BenchmarkRankSourcesLarge; EXPERIMENTS.md records
// the measured ratio.
func BenchmarkQueryTopK(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 21, NumSources: 2000})
	panel := analytics.Build(world, 22)
	records := quality.SourceRecordsFromWorld(world, panel)
	di := quality.DomainOfInterest{Categories: world.Categories}
	assessor := quality.NewSourceAssessor(records, di, nil)
	q := quality.Query{MinScore: 0.5, TopK: 10}
	b.ReportAllocs()
	b.ResetTimer()
	var matched int
	for i := 0; i < b.N; i++ {
		res, err := assessor.Query(records, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Items) != 10 {
			b.Fatalf("top-k returned %d items", len(res.Items))
		}
		matched = res.Total
	}
	b.StopTimer()
	// Report predicate selectivity so the filter is provably live.
	b.ReportMetric(float64(matched)/float64(len(records)), "match-frac")
}

// BenchmarkAdvanceIncremental measures one daily monitoring tick at web
// scale: 2000 sources with ~1% daily churn, assessed incrementally
// (delta-aware record refresh, measure-matrix row updates with sorted-
// column repair, panel refresh, snapshot swap). Compare against
// BenchmarkAdvanceRebuild — the same tick followed by a full FromWorld
// rebuild — for the perf trajectory recorded in CHANGES.md. Both loops
// include world generation for the tick itself, which is common cost.
func BenchmarkAdvanceIncremental(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 91, NumSources: 2000, ChurnScale: 0.27})
	c := FromWorld(world, quality.DomainOfInterest{}, 91)
	b.ReportAllocs()
	b.ResetTimer()
	dirty := 0
	for i := 0; i < b.N; i++ {
		c.Advance(1, int64(9100+i))
		dirty += len(c.LastDelta().DirtySourceIDs())
	}
	b.StopTimer()
	// Report the measured churn so the "~1% daily" claim is checked, not
	// asserted.
	b.ReportMetric(float64(dirty)/float64(b.N)/float64(len(world.Sources)), "dirty-frac")
	if len(c.RankSources()) != 2000 {
		b.Fatal("short ranking after advance")
	}
}

// BenchmarkWatchFanout measures the standing-query subscription fan-out
// at web scale: one daily ~1% churn tick over 2000 sources with 1 vs 64
// subscribers of the same canonical query. The acceptance bar of the
// subscription PR is that per-tick standing-query evaluations do NOT
// scale with subscriber count — the registry evaluates each distinct
// query once per tick and fans the shared delta out — so the reported
// evals/tick metric must stay 1.0 for both sub-benchmarks and ns/op must
// stay in the AdvanceIncremental regime (fan-out is channel sends, not
// re-evaluation).
func BenchmarkWatchFanout(b *testing.B) {
	for _, n := range []int{1, 64} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			world := webgen.Generate(webgen.Config{Seed: 91, NumSources: 2000, ChurnScale: 0.27})
			c := FromWorld(world, quality.DomainOfInterest{}, 91)
			q := NewQuery().MinScore(0.5).TopK(10).Build()
			subs := make([]*Subscription, n)
			for i := range subs {
				s, err := c.Subscribe(q)
				if err != nil {
					b.Fatal(err)
				}
				subs[i] = s
				defer s.Close()
			}
			start := c.subs.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Advance(1, int64(9300+i))
				for _, s := range subs {
					select {
					case <-s.Events():
					default:
						b.Fatal("tick delivered no event")
					}
				}
			}
			b.StopTimer()
			st := c.subs.Stats()
			if st.Overflows != 0 {
				b.Fatalf("%d subscribers overflowed", st.Overflows)
			}
			evalsPerTick := float64(st.Evaluations-start.Evaluations) / float64(b.N)
			b.ReportMetric(evalsPerTick, "evals/tick")
			if evalsPerTick != 1 {
				b.Fatalf("per-tick evaluations = %.2f with %d subscribers, want 1 (fan-out must not re-evaluate)", evalsPerTick, n)
			}
		})
	}
}

// BenchmarkAdvanceRebuild is the non-incremental baseline for
// BenchmarkAdvanceIncremental: identical world and churn, but each tick
// re-assesses the corpus from scratch via FromWorld (the pre-incremental
// Advance behaviour).
func BenchmarkAdvanceRebuild(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 91, NumSources: 2000, ChurnScale: 0.27})
	di := quality.DomainOfInterest{Categories: world.Categories}
	b.ReportAllocs()
	b.ResetTimer()
	var c *Corpus
	for i := 0; i < b.N; i++ {
		world, _ = webgen.Advance(world, 1, int64(9100+i))
		c = FromWorld(world, di, 91)
	}
	if len(c.RankSources()) != 2000 {
		b.Fatal("short ranking after rebuild")
	}
}

// BenchmarkNewCorpus measures corpus construction end to end: world
// generation, panel, environment assessment (sources + contributors) and
// benchmark derivation.
func BenchmarkNewCorpus(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := New(Config{Seed: 31, NumSources: 500})
		if len(c.SourceRecords()) != 500 {
			b.Fatal("short corpus")
		}
	}
}

func BenchmarkAssessSource(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 4, NumSources: 100})
	panel := analytics.Build(world, 5)
	records := quality.SourceRecordsFromWorld(world, panel)
	di := quality.DomainOfInterest{Categories: world.Categories}
	assessor := quality.NewSourceAssessor(records, di, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assessor.Assess(records[i%len(records)])
	}
}

func BenchmarkSearchQuery(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 6, NumSources: 1200})
	panel := analytics.Build(world, 7)
	engine := search.NewEngine(world, panel, search.Config{Seed: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Search("duomo hotel milan", 20)
	}
}

func BenchmarkSentimentScore(b *testing.B) {
	a := sentiment.NewAnalyzer()
	text := "The duomo was really wonderful during our visit but the metro was not clean and the hotel felt overpriced."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Score(text)
	}
}

func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		webgen.Generate(webgen.Config{Seed: int64(i), NumSources: 100})
	}
}

func BenchmarkMashupRun(b *testing.B) {
	c := New(Config{Seed: 77, NumSources: 40, CommentText: true})
	comp := []byte(`{
	  "name": "bench",
	  "components": [
	    {"id": "src", "type": "comments", "params": {"top_sources": 10}},
	    {"id": "senti", "type": "sentiment"},
	    {"id": "view", "type": "indicator-viewer"}
	  ],
	  "wires": [
	    {"from": "src.out", "to": "senti.in"},
	    {"from": "senti.indicators", "to": "view.in"}
	  ]
	}`)
	rt, err := c.NewMashup(comp)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryTopKCached measures the per-snapshot query result cache
// on the exact workload of BenchmarkQueryTopK, served through the facade:
// the first read of an assessment round builds the ranked spine and
// materializes the window; every repeat read of the same canonical query
// within the round is a map hit. The acceptance bar of the scale-out
// serving PR is >= 5x fewer ns/op than BenchmarkQueryTopK on repeat
// reads; EXPERIMENTS.md records the measured ratio.
func BenchmarkQueryTopKCached(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 21, NumSources: 2000})
	c := FromWorld(world, quality.DomainOfInterest{}, 21)
	q := NewQuery().MinScore(0.5).TopK(10).Build()
	if _, err := c.QuerySources(q); err != nil {
		b.Fatal(err) // warm the round: spine + window
	}
	b.ReportAllocs()
	b.ResetTimer()
	var matched int
	for i := 0; i < b.N; i++ {
		res, err := c.QuerySources(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Items) != 10 {
			b.Fatalf("top-k returned %d items", len(res.Items))
		}
		matched = res.Total
	}
	b.StopTimer()
	b.ReportMetric(float64(matched)/2000, "match-frac")
}

// BenchmarkQueryCursorPage measures one resumed keyset page (uncached
// engine path, page 50 of a limit-10 walk) against the same corpus: the
// lean pass plus ten materializations, independent of how deep the walk
// is — the contract that replaces the O(offset+limit) prefix re-selection
// of the deprecated offset shim.
func BenchmarkQueryCursorPage(b *testing.B) {
	world := webgen.Generate(webgen.Config{Seed: 21, NumSources: 2000})
	panel := analytics.Build(world, 22)
	records := quality.SourceRecordsFromWorld(world, panel)
	di := quality.DomainOfInterest{Categories: world.Categories}
	assessor := quality.NewSourceAssessor(records, di, nil)
	// Derive the cursor at rank 500 once, then re-read the page after it.
	probe, err := assessor.Query(records, quality.Query{Limit: 500})
	if err != nil {
		b.Fatal(err)
	}
	cur := probe.Next
	if cur == nil {
		b.Fatal("probe walk ended early")
	}
	q := quality.Query{Limit: 10, After: cur, Fields: quality.ProjectScores}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := assessor.Query(records, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Items) != 10 {
			b.Fatalf("page returned %d items", len(res.Items))
		}
	}
}

// countSink is an in-memory deliver.Sink counting successful pushes.
type countSink struct{ n atomic.Int64 }

func (s *countSink) Deliver(ctx context.Context, d *deliver.Delivery) error {
	s.n.Add(1)
	return nil
}

// BenchmarkDeliverFanout measures the push-delivery engine end to end:
// one daily ~1% churn tick over 2000 sources fanned out to 1 vs 16
// attached sinks, timed until every sink has settled the tick (delivered
// its delta, or consumed it for zero bytes when the window did not move).
// Like BenchmarkWatchFanout, the engine rides the one-evaluation-per-tick
// registry, so evals/tick must stay 1.0 regardless of sink count.
func BenchmarkDeliverFanout(b *testing.B) {
	for _, n := range []int{1, 16} {
		b.Run(fmt.Sprintf("sinks=%d", n), func(b *testing.B) {
			world := webgen.Generate(webgen.Config{Seed: 91, NumSources: 2000, ChurnScale: 0.27})
			c := FromWorld(world, quality.DomainOfInterest{}, 91)
			q := NewQuery().MinScore(0.5).TopK(10).Build()
			m := c.Sinks()
			sinks := make([]*countSink, n)
			ids := make([]string, n)
			for i := range sinks {
				sinks[i] = &countSink{}
				id, err := m.Register(SinkConfig{Name: fmt.Sprintf("bench-%d", i), Sink: sinks[i], Query: q})
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = id
			}
			settled := func(v int64, deadline time.Time) {
				for _, id := range ids {
					for {
						st, ok := m.Get(id)
						if !ok {
							b.Fatalf("sink %s vanished", id)
						}
						if st.State != deliver.StateHealthy {
							b.Fatalf("sink %s degraded to %s: %s", id, st.State, st.LastError)
						}
						if st.LastDelivered >= v {
							break
						}
						if time.Now().After(deadline) {
							b.Fatalf("sink %s stuck at %d, want %d", id, st.LastDelivered, v)
						}
						time.Sleep(20 * time.Microsecond)
					}
				}
			}
			settled(c.SnapshotVersion(), time.Now().Add(10*time.Second)) // baseline syncs
			start := c.subs.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Advance(1, int64(9600+i))
				settled(c.SnapshotVersion(), time.Now().Add(10*time.Second))
			}
			b.StopTimer()
			st := c.subs.Stats()
			evalsPerTick := float64(st.Evaluations-start.Evaluations) / float64(b.N)
			b.ReportMetric(evalsPerTick, "evals/tick")
			if evalsPerTick != 1 {
				b.Fatalf("per-tick evaluations = %.2f with %d sinks, want 1 (sinks must share the registry fan-out)", evalsPerTick, n)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := m.Close(ctx); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkServeLoad drives the whole serving stack over real HTTP during
// live ticks: 256 concurrent SSE streams, 16 webhook push sinks and 8
// keyset-paginating readers against one httptest server, timing each tick
// until every stream has read the tick's frame and every sink has settled
// its delta. This is the scale-out acceptance load of the delivery PR: a
// tick's fan-out cost is channel sends and HTTP writes, never
// re-evaluation, and no consumer class starves another.
func BenchmarkServeLoad(b *testing.B) {
	const (
		nStreams = 256
		nSinks   = 16
		nReaders = 8
	)
	c := New(Config{Seed: 77, NumSources: 400, CommentText: true})
	srv := httptest.NewServer(c.APIHandler())
	defer srv.Close()
	client := srv.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = nStreams

	// Webhook receiver: accepts every envelope (the sink settle condition
	// below reads the manager's LastDelivered, which also advances on
	// zero-byte filtered ticks).
	recv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
	}))
	defer recv.Close()
	sinkIDs := make([]string, 0, nSinks)
	for i := 0; i < nSinks; i++ {
		body := fmt.Sprintf(`{"name":"load-%d","url":"%s/hook/%d","query":"min_score=0.5&k=10"}`, i, recv.URL, i)
		resp, err := client.Post(srv.URL+"/api/v1/sinks", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var env struct {
			Sink SinkStats `json:"sink"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || resp.StatusCode != http.StatusCreated {
			b.Fatalf("sink create: status %d err %v", resp.StatusCode, err)
		}
		resp.Body.Close()
		sinkIDs = append(sinkIDs, env.Sink.ID)
	}

	// SSE consumers: each publishes the id of the last frame it read.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamAck := make([]atomic.Int64, nStreams)
	var wg sync.WaitGroup
	for i := 0; i < nStreams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/api/v1/stream?min_score=0.5&k=10", nil)
			resp, err := client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				line := sc.Text()
				if strings.HasPrefix(line, "id: ") {
					if v, err := strconv.ParseInt(line[len("id: "):], 10, 64); err == nil {
						streamAck[i].Store(v)
					}
				}
				if strings.HasPrefix(line, "event: resync") {
					b.Error("stream dropped as slow consumer under load")
					return
				}
			}
		}(i)
	}
	// Paginated readers: continuous keyset walks through the ranking.
	for i := 0; i < nReaders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cursor := ""
			for ctx.Err() == nil {
				target := srv.URL + "/api/v1/sources?limit=50"
				if cursor != "" {
					target += "&cursor=" + cursor
				}
				req, _ := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
				resp, err := client.Do(req)
				if err != nil {
					return
				}
				var env struct {
					NextCursor string `json:"next_cursor"`
				}
				json.NewDecoder(resp.Body).Decode(&env)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					cursor = "" // cursor aged across a tick boundary: restart the walk
					continue
				}
				cursor = env.NextCursor
			}
		}()
	}

	m := c.Sinks()
	settled := func(v int64) {
		deadline := time.Now().Add(30 * time.Second)
		for i := range streamAck {
			for streamAck[i].Load() < v {
				if time.Now().After(deadline) {
					b.Fatalf("stream %d stuck at %d, want %d", i, streamAck[i].Load(), v)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
		for _, id := range sinkIDs {
			for {
				st, ok := m.Get(id)
				if !ok || st.State != deliver.StateHealthy {
					b.Fatalf("sink %s degraded: %+v", id, st)
				}
				if st.LastDelivered >= v {
					break
				}
				if time.Now().After(deadline) {
					b.Fatalf("sink %s stuck at %d, want %d", id, st.LastDelivered, v)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	settled(c.SnapshotVersion()) // all streams synced, all sinks baselined
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Advance(1, int64(7700+i))
		settled(c.SnapshotVersion())
	}
	b.StopTimer()
	b.ReportMetric(nStreams, "streams")
	b.ReportMetric(nSinks, "sinks")
	cancel()
	wg.Wait()
}

// BenchmarkAdvanceSkewed is the adaptive-ingestion acceptance benchmark:
// a batch of 16 per-source ticks under a 90/5 skew (90% of polls landing
// on the ~5% hottest of 2000 sources) applied three ways — published one
// round per tick ("sequential", 16 UpdateRows repairs and 16 fan-outs),
// buffered and drained as ONE coalesced round ("coalesced", 16 cheap
// folds + 1 repair), and a from-scratch rebuild of the final world
// ("rebuild"). All three end bit-identical (the equivalence suites pin
// it); the coalesced drain must beat the sequential publishes on both
// ns/op and allocs/op for the decoupling to pay for itself.
func BenchmarkAdvanceSkewed(b *testing.B) {
	const batch = 16
	di := quality.DomainOfInterest{}
	b.Run("sequential", func(b *testing.B) {
		c := FromWorld(webgen.Generate(webgen.Config{Seed: 93, NumSources: 2000, ChurnScale: 3}), di, 93)
		rng := rand.New(rand.NewSource(93))
		seed := int64(930000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, id := range skewedTicks(rng, c.World(), batch) {
				seed++
				c.Ingest(id, seed)
				c.DrainTick()
			}
		}
	})
	b.Run("coalesced", func(b *testing.B) {
		c := FromWorld(webgen.Generate(webgen.Config{Seed: 93, NumSources: 2000, ChurnScale: 3}), di, 93)
		rng := rand.New(rand.NewSource(93))
		seed := int64(930000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, id := range skewedTicks(rng, c.World(), batch) {
				seed++
				c.Ingest(id, seed)
			}
			c.DrainTick()
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		world := webgen.Generate(webgen.Config{Seed: 93, NumSources: 2000, ChurnScale: 3})
		rng := rand.New(rand.NewSource(93))
		seed := int64(930000)
		cur := webgen.NewIDCursor(world)
		b.ReportAllocs()
		b.ResetTimer()
		var c *Corpus
		for i := 0; i < b.N; i++ {
			for _, id := range skewedTicks(rng, world, batch) {
				seed++
				world, _ = webgen.AdvanceSource(world, id, seed, cur)
			}
			c = FromWorld(world, di, 93)
		}
		b.StopTimer()
		if c == nil || len(c.RankSources()) != 2000 {
			b.Fatal("short ranking after skewed rebuild")
		}
	})
}

// dedupBenchTicks pre-generates a ring of sparse same-day ticks over a
// 2000-source commenting world (~1% of sources churn per tick) so the
// dedup-index benchmarks time exactly the index work — never the world
// generation. Both benchmarks walk the same ring: Rebuild constructs the
// index from scratch at each tick's world, Incremental folds only the
// tick's delta into the maintained index. The correlation satellite's
// acceptance bar is Incremental >= 3x faster.
type dedupTick struct {
	world *webgen.World
	delta *webgen.Delta
}

func dedupBenchTicks(b *testing.B) (*webgen.World, []dedupTick) {
	b.Helper()
	base := webgen.Generate(webgen.Config{
		Seed: 97, NumSources: 2000, CommentText: true, SyndicationRate: 0.1,
	})
	const ringLen = 64
	ticks := make([]dedupTick, ringLen)
	w := base
	for k := 0; k < ringLen; k++ {
		churn := make([]int, 20) // 20/2000 = 1% of sources per tick
		for i := range churn {
			churn[i] = (k*20 + i) % len(base.Sources)
		}
		var d *webgen.Delta
		w, d = webgen.AdvanceSameDay(w, int64(970_000+k), churn)
		ticks[k] = dedupTick{world: w, delta: d}
	}
	return base, ticks
}

func BenchmarkDedupIndexRebuild(b *testing.B) {
	_, ticks := dedupBenchTicks(b)
	b.ReportAllocs()
	b.ResetTimer()
	var ix *correlate.Index
	for i := 0; i < b.N; i++ {
		ix = correlate.NewIndex()
		ix.Build(ticks[i%len(ticks)].world)
	}
	b.StopTimer()
	if ix.Stats().Indexed == 0 {
		b.Fatal("rebuild indexed no comments")
	}
}

func BenchmarkDedupIndexIncremental(b *testing.B) {
	base, ticks := dedupBenchTicks(b)
	ix := correlate.NewIndex()
	ix.Build(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(ticks)
		if k == 0 && i > 0 {
			// Ring wrapped: re-prepare the pre-tick index off the clock so
			// every timed fold applies its delta to the correct prior state.
			b.StopTimer()
			ix = correlate.NewIndex()
			ix.Build(base)
			b.StartTimer()
		}
		ix.Fold(ticks[k].world, ticks[k].delta)
	}
	b.StopTimer()
	if ix.Stats().Indexed == 0 {
		b.Fatal("incremental fold indexed no comments")
	}
}

// BenchmarkStoriesQuery measures the first page of the stories listing on
// a web-scale commenting corpus — snapshot load, keyset scan, page copy.
// The serving bar from the correlation PR: within ~2x of
// BenchmarkQueryTopK, the assessment listing at the same corpus size.
func BenchmarkStoriesQuery(b *testing.B) {
	c := New(Config{Seed: 21, NumSources: 2000, CommentText: true, SyndicationRate: 0.1})
	b.ReportAllocs()
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		pg := c.Stories().Query(StoryQuery{Limit: 10})
		if len(pg.Stories) == 0 {
			b.Fatal("stories query returned an empty first page")
		}
		total = pg.Total
	}
	b.StopTimer()
	// Report the cluster population so the listing is provably non-trivial.
	b.ReportMetric(float64(total), "stories")
}
