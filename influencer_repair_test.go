package informer

// Satellite pin: the influencer roster is delta-aware. Across sparse
// ticks the facade repairs the previous round's roster from the delta's
// dirty contributors (quality.RepairInfluencers) instead of re-assessing
// every contributor — and the repaired roster is identical to the one a
// freshly built corpus computes. The suite also pins that the repair
// path actually engages (a licence that never fires would make the
// equivalence vacuous) and that clean contributors' assessments ride
// over by pointer.

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/informing-observers/informer/internal/quality"
)

func TestInfluencerRepairMatchesRebuild(t *testing.T) {
	c := New(Config{Seed: 311, NumSources: 50, NumUsers: 220, CommentText: true, SyndicationRate: 0.1})
	strategies := []quality.InfluencerStrategy{ByActivity, ByRelative, Combined}

	repairsEngaged := 0
	for tick := 0; tick < 5; tick++ {
		// Fill this round's roster cache, so the next publish carries
		// the rosters forward as repair substrate.
		for _, s := range strategies {
			c.Influencers(InfluencerOptions{Strategy: s})
		}
		prev := c.state.Load()
		// Restrict the churn to two sources: a sparse tick dirties few
		// contributors, so the corpus-wide contributor benchmarks (fixed
		// quantiles over ~220 records) usually hold still — the licence
		// the repair path needs.
		c.AdvanceSameDay(int64(9000+tick), []int{tick % len(c.World().Sources), (tick + 7) % len(c.World().Sources)})
		cur := c.state.Load()
		if cur.infRepairOK && len(cur.prevInf) > 0 {
			repairsEngaged++
		}

		fresh := FromWorld(c.World(), c.DI, 311)
		for _, s := range strategies {
			for _, topK := range []int{0, 10} {
				opts := InfluencerOptions{Strategy: s, TopK: topK}
				got, want := c.Influencers(opts), fresh.Influencers(opts)
				if len(got) != len(want) {
					t.Fatalf("tick %d %v topK=%d: %d influencers, rebuild has %d", tick, s, topK, len(got), len(want))
				}
				for i := range got {
					if got[i].Record.ID != want[i].Record.ID || got[i].InfluenceScore != want[i].InfluenceScore {
						t.Fatalf("tick %d %v topK=%d rank %d: (%d, %v) vs rebuild (%d, %v)",
							tick, s, topK, i, got[i].Record.ID, got[i].InfluenceScore, want[i].Record.ID, want[i].InfluenceScore)
					}
					if !reflect.DeepEqual(got[i].Assessment.Normalized, want[i].Assessment.Normalized) {
						t.Fatalf("tick %d %v rank %d: assessments diverge", tick, s, i)
					}
				}
			}
		}

		// When the repair licence held, clean contributors' assessments
		// must be shared by pointer with the previous round's roster —
		// the whole point of the repair.
		if cur.infRepairOK {
			key := fmt.Sprintf("%s|%d", Combined, 1)
			prevRoster, curRoster := prev.infRosters[key], cur.infRosters[key]
			if prevRoster != nil && curRoster != nil {
				dirty := map[int]bool{}
				for _, id := range cur.infDirty {
					dirty[id] = true
				}
				prevByID := map[int]*Assessment{}
				for _, inf := range prevRoster {
					prevByID[inf.Record.ID] = inf.Assessment
				}
				shared, clean := 0, 0
				for _, inf := range curRoster {
					if dirty[inf.Record.ID] {
						continue
					}
					if pa, ok := prevByID[inf.Record.ID]; ok {
						clean++
						if inf.Assessment == pa {
							shared++
						}
					}
				}
				if clean > 0 && shared != clean {
					t.Fatalf("tick %d: only %d/%d clean contributors share their assessment by pointer", tick, shared, clean)
				}
			}
		}
	}
	if repairsEngaged == 0 {
		t.Fatal("the influencer repair licence never engaged across 5 sparse ticks; the equivalence above is vacuous")
	}
}
