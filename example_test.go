package informer_test

import (
	"fmt"

	informer "github.com/informing-observers/informer"
)

// ExampleNew shows the minimal assess-and-rank loop.
func ExampleNew() {
	c := informer.New(informer.Config{Seed: 2024, NumSources: 20})
	ranked := c.RankSources()
	fmt.Println("sources assessed:", len(ranked))
	fmt.Println("best score is a fraction:", ranked[0].Score > 0 && ranked[0].Score <= 1)
	// Output:
	// sources assessed: 20
	// best score is a fraction: true
}

// ExampleCorpus_Influencers demonstrates spam-resistant influencer
// detection (Section 3.2 of the paper).
func ExampleCorpus_Influencers() {
	c := informer.New(informer.Config{Seed: 11, NumSources: 40, NumUsers: 200, SpamRate: 0.2})
	top := c.Influencers(informer.InfluencerOptions{Strategy: informer.Combined, TopK: 5})
	spam := 0
	for _, inf := range top {
		if inf.Record.Spammer {
			spam++
		}
	}
	fmt.Println("influencers:", len(top), "spam bots among them:", spam)
	// Output:
	// influencers: 5 spam bots among them: 0
}

// ExampleCorpus_Advance runs the paper's monitoring loop incrementally:
// archive the current ranking as a report, let a week of activity arrive
// (Advance re-assesses only the delta, swapping the assessment snapshot
// atomically under any concurrent readers), then diff the rankings with
// RankShift.
func ExampleCorpus_Advance() {
	c := informer.New(informer.Config{Seed: 81, NumSources: 40})
	before := c.SourceReport()

	c.Advance(7, 811) // a week of fresh discussions and comments

	after := c.SourceReport()
	delta := c.LastDelta()
	shift := informer.RankShift(before, after)
	moved := 0
	for _, d := range shift {
		if d != 0 {
			moved++
		}
	}
	fmt.Println("round 1:", before.GeneratedAt.Format("2006-01-02"),
		"- round 2:", after.GeneratedAt.Format("2006-01-02"))
	fmt.Println("tick touched some sources:", len(delta.DirtySourceIDs()) > 0)
	fmt.Println("shift tracked for every source:", len(shift) == 40)
	fmt.Println("a week of activity moved some ranks:", moved > 0)
	// Output:
	// round 1: 2011-10-01 - round 2: 2011-10-08
	// tick touched some sources: true
	// shift tracked for every source: true
	// a week of activity moved some ranks: true
}

// ExampleCorpus_RunMashup executes a small JSON composition.
func ExampleCorpus_RunMashup() {
	c := informer.New(informer.Config{Seed: 7, NumSources: 20, CommentText: true})
	dash, err := c.RunMashup([]byte(`{
	  "name": "demo",
	  "components": [
	    {"id": "src", "type": "comments", "params": {"top_sources": 3}},
	    {"id": "senti", "type": "sentiment"},
	    {"id": "view", "type": "indicator-viewer", "title": "Sentiment"}
	  ],
	  "wires": [
	    {"from": "src.out", "to": "senti.in"},
	    {"from": "senti.indicators", "to": "view.in"}
	  ]
	}`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	v, _ := dash.View("view")
	fmt.Println("dashboard:", dash.Name, "— indicator categories:", len(v.Items) > 0)
	// Output:
	// dashboard: demo — indicator categories: true
}
