package informer

// Conditional re-fetch across Advance ticks on the crawlable surface
// (satellite of the query-API PR): a crawler holding pre-tick ETags must
// be told "not modified" for every page of an untouched source and get
// fresh 200 bodies for the pages a tick actually changed — the contract
// that makes incremental re-crawls of an advancing corpus cheap.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// fetchPage GETs a path and returns status, ETag and body.
func fetchPage(t *testing.T, h http.Handler, path, ifNoneMatch string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header().Get("ETag"), rec.Body.String()
}

func TestHandlerConditionalRefetchAcrossTicks(t *testing.T) {
	c := New(Config{Seed: 181, NumSources: 40, NumUsers: 120, CommentText: true})
	h := c.Handler()

	// Crawl every source page (index + all discussion pages) and archive
	// the ETags, like a polite crawler's first pass.
	type page struct{ path, etag, body string }
	pagesBySource := map[int][]page{}
	for _, src := range c.World().Sources {
		paths := []string{fmt.Sprintf("/s/%d/", src.ID)}
		for _, d := range src.Discussions {
			paths = append(paths, fmt.Sprintf("/s/%d/d/%d", src.ID, d.ID))
		}
		for _, p := range paths {
			code, etag, body := fetchPage(t, h, p, "")
			if code != http.StatusOK || etag == "" {
				t.Fatalf("%s: status %d etag %q", p, code, etag)
			}
			pagesBySource[src.ID] = append(pagesBySource[src.ID], page{p, etag, body})
		}
	}

	// Tick the world enough to touch some sources but not all.
	c.Advance(4, 1810)
	delta := c.LastDelta()
	dirty := map[int]bool{}
	for _, id := range delta.DirtySourceIDs() {
		dirty[id] = true
	}
	if len(dirty) == 0 || len(dirty) == len(pagesBySource) {
		t.Fatalf("tick dirtied %d/%d sources; pick another seed/tick", len(dirty), len(pagesBySource))
	}

	// Re-fetch with the archived ETags against the post-tick handler.
	for _, src := range c.World().Sources {
		changed := 0
		for _, p := range pagesBySource[src.ID] {
			code, _, body := fetchPage(t, h, p.path, p.etag)
			switch {
			case !dirty[src.ID]:
				// Untouched source: every page must answer 304 — the tick
				// shared its content copy-on-write, byte for byte.
				if code != http.StatusNotModified {
					t.Errorf("clean source %d: %s answered %d, want 304", src.ID, p.path, code)
				}
			case code == http.StatusOK:
				if body == p.body {
					t.Errorf("dirty source %d: %s re-sent an identical body with a new ETag", src.ID, p.path)
				}
				changed++
			case code != http.StatusNotModified:
				t.Errorf("dirty source %d: %s answered %d", src.ID, p.path, code)
			}
		}
		// A dirty source must have at least one genuinely changed page
		// (a new comment, a new discussion on its index, ...). Pages the
		// tick did not touch may still answer 304 — that is the point.
		if dirty[src.ID] && changed == 0 {
			t.Errorf("dirty source %d: no page changed", src.ID)
		}
	}

	// New discussions opened by the tick are fetchable on the new handler.
	for _, d := range delta.Discussions {
		p := fmt.Sprintf("/s/%d/d/%d", d.SourceID, d.ID)
		if code, _, _ := fetchPage(t, h, p, ""); code != http.StatusOK {
			t.Errorf("new discussion %s: status %d", p, code)
		}
	}
}
